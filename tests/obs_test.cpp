// Tests for src/obs: the metrics registry (counters, gauges, histograms,
// sharding, snapshots, exporters) and the trace layer (span recording,
// Chrome JSON), plus integration checks that the instrumented kernels
// actually report.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/opt.hpp"
#include "core/pamad.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/broadcast_sim.hpp"
#include "sim/sweep.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

#if !TCSA_OBS_COMPILED
TEST(Obs, CompiledOut) { GTEST_SKIP() << "built with TCSA_OBS=OFF"; }
#else

/// Enables metrics for one test body and restores the prior state.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::enabled();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(was_enabled_);
    obs::set_tracing_enabled(false);
  }
  bool was_enabled_ = false;
};

// ------------------------------------------------------------- registry

TEST_F(ObsTest, CounterAccumulatesAndSnapshots) {
  const obs::MetricId id =
      obs::register_counter("tcsa_test_basic_total", "test counter");
  const std::uint64_t before =
      obs::snapshot().counter_value("tcsa_test_basic_total");
  obs::counter_add(id, 1);
  obs::counter_add(id, 41);
  EXPECT_EQ(obs::snapshot().counter_value("tcsa_test_basic_total"),
            before + 42);
}

TEST_F(ObsTest, RegistrationIsIdempotentByName) {
  const obs::MetricId a =
      obs::register_counter("tcsa_test_idem_total", "same definition");
  const obs::MetricId b =
      obs::register_counter("tcsa_test_idem_total", "same definition");
  EXPECT_EQ(a, b);
}

TEST_F(ObsTest, DisabledRecordersAreNoOps) {
  const obs::MetricId id =
      obs::register_counter("tcsa_test_gate_total", "gating");
  const std::uint64_t before =
      obs::snapshot().counter_value("tcsa_test_gate_total");
  obs::set_enabled(false);
  obs::counter_add(id, 100);
  EXPECT_EQ(obs::snapshot().counter_value("tcsa_test_gate_total"), before);
  obs::set_enabled(true);
  obs::counter_add(id, 1);
  EXPECT_EQ(obs::snapshot().counter_value("tcsa_test_gate_total"), before + 1);
}

TEST_F(ObsTest, AlwaysVariantBypassesTheGate) {
  // WARN-class events (placement overflow, OPT budget bail) must stay
  // countable even with metrics off.
  const obs::MetricId id =
      obs::register_counter("tcsa_test_warn_total", "warn-class");
  const std::uint64_t before =
      obs::snapshot().counter_value("tcsa_test_warn_total");
  obs::set_enabled(false);
  obs::counter_add_always(id, 3);
  EXPECT_EQ(obs::snapshot().counter_value("tcsa_test_warn_total"), before + 3);
}

TEST_F(ObsTest, GaugeIsLastWriteWins) {
  const obs::MetricId id = obs::register_gauge("tcsa_test_gauge", "gauge");
  obs::gauge_set(id, 2.5);
  obs::gauge_set(id, -7.0);
  const obs::MetricsSnapshot snap = obs::snapshot();
  double value = 1e9;
  for (const obs::GaugeSnapshot& g : snap.gauges)
    if (g.name == "tcsa_test_gauge") value = g.value;
  EXPECT_DOUBLE_EQ(value, -7.0);
}

TEST_F(ObsTest, CountersSumAcrossThreads) {
  // 8 threads, each bumping its own shard; the scrape must see every add
  // even though no thread ever touched another's cache line.
  const obs::MetricId id =
      obs::register_counter("tcsa_test_mt_total", "multithreaded");
  const std::uint64_t before =
      obs::snapshot().counter_value("tcsa_test_mt_total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([id] {
      for (std::uint64_t i = 0; i < kAdds; ++i) obs::counter_add(id, 1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Shards of exited threads are folded into the retired accumulator.
  EXPECT_EQ(obs::snapshot().counter_value("tcsa_test_mt_total"),
            before + kThreads * kAdds);
}

// ------------------------------------------------------------ histograms

TEST_F(ObsTest, HistogramBucketBoundariesAreInclusiveUpper) {
  const obs::MetricId id = obs::register_histogram(
      "tcsa_test_hist_bounds", "boundary semantics", {1.0, 10.0, 100.0});
  obs::histogram_observe(id, 0.5);    // <= 1
  obs::histogram_observe(id, 1.0);    // <= 1 (Prometheus: le is inclusive)
  obs::histogram_observe(id, 1.5);    // <= 10
  obs::histogram_observe(id, 10.0);   // <= 10
  obs::histogram_observe(id, 99.0);   // <= 100
  obs::histogram_observe(id, 1e6);    // +Inf
  const obs::MetricsSnapshot snap = obs::snapshot();
  const obs::HistogramSnapshot* h = snap.histogram("tcsa_test_hist_bounds");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->counts.size(), 4u);  // 3 bounds + implicit +Inf
  EXPECT_EQ(h->counts[0], 2u);
  EXPECT_EQ(h->counts[1], 2u);
  EXPECT_EQ(h->counts[2], 1u);
  EXPECT_EQ(h->counts[3], 1u);
  EXPECT_EQ(h->total(), 6u);
  EXPECT_DOUBLE_EQ(h->sum, 0.5 + 1.0 + 1.5 + 10.0 + 99.0 + 1e6);
}

TEST_F(ObsTest, HistogramRebindingBoundsThrows) {
  obs::register_histogram("tcsa_test_hist_fixed", "fixed bounds", {1.0, 2.0});
  EXPECT_THROW(obs::register_histogram("tcsa_test_hist_fixed", "fixed bounds",
                                       {1.0, 2.0, 3.0}),
               std::invalid_argument);
}

// ------------------------------------------------------------- snapshots

TEST_F(ObsTest, SnapshotMinusIsolatesARun) {
  const obs::MetricId id =
      obs::register_counter("tcsa_test_delta_total", "delta");
  obs::counter_add(id, 5);
  const obs::MetricsSnapshot before = obs::snapshot();
  obs::counter_add(id, 7);
  const obs::MetricsSnapshot delta = obs::snapshot().minus(before);
  EXPECT_EQ(delta.counter_value("tcsa_test_delta_total"), 7u);
}

TEST_F(ObsTest, SnapshotMergeSumsByName) {
  const obs::MetricId c =
      obs::register_counter("tcsa_test_merge_total", "merge");
  const obs::MetricId h = obs::register_histogram(
      "tcsa_test_merge_hist", "merge hist", {1.0, 2.0});
  const obs::MetricsSnapshot before = obs::snapshot();
  obs::counter_add(c, 3);
  obs::histogram_observe(h, 0.5);
  const obs::MetricsSnapshot first = obs::snapshot().minus(before);
  obs::counter_add(c, 4);
  obs::histogram_observe(h, 1.5);
  obs::MetricsSnapshot merged = first;
  merged.merge(obs::snapshot().minus(before).minus(first));
  EXPECT_EQ(merged.counter_value("tcsa_test_merge_total"), 7u);
  const obs::HistogramSnapshot* hist =
      merged.histogram("tcsa_test_merge_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->total(), 2u);
  EXPECT_EQ(hist->counts[0], 1u);
  EXPECT_EQ(hist->counts[1], 1u);
  EXPECT_DOUBLE_EQ(hist->sum, 2.0);
}

TEST_F(ObsTest, CounterValueOfUnknownNameIsZero) {
  EXPECT_EQ(obs::snapshot().counter_value("tcsa_no_such_metric_total"), 0u);
  EXPECT_EQ(obs::snapshot().histogram("tcsa_no_such_hist"), nullptr);
}

// ------------------------------------------------------------- exporters

TEST_F(ObsTest, JsonExportContainsSectionsAndValues) {
  const obs::MetricId id =
      obs::register_counter("tcsa_test_json_total", "json export");
  obs::counter_add(id, 9);
  const std::string json = obs::snapshot().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"tcsa_test_json_total\""), std::string::npos);
}

TEST_F(ObsTest, PrometheusExportFollowsExposition) {
  const obs::MetricId c =
      obs::register_counter("tcsa_test_prom_total", "prom export");
  const obs::MetricId h = obs::register_histogram(
      "tcsa_test_prom_hist", "prom hist", {1.0, 2.0});
  obs::counter_add(c, 2);
  obs::histogram_observe(h, 0.5);
  obs::histogram_observe(h, 5.0);
  const std::string text = obs::snapshot().to_prometheus();
  EXPECT_NE(text.find("# HELP tcsa_test_prom_total prom export"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tcsa_test_prom_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tcsa_test_prom_hist histogram"),
            std::string::npos);
  // Buckets are cumulative and end in +Inf == _count.
  EXPECT_NE(text.find("tcsa_test_prom_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("tcsa_test_prom_hist_count"), std::string::npos);
  EXPECT_NE(text.find("tcsa_test_prom_hist_sum"), std::string::npos);
}

TEST_F(ObsTest, LabeledGaugeExposesSeriesWithOneHelpBlock) {
  // tcsa_build_info-style info gauge: fixed labels, value 1. The exposition
  // must carry the labels on the sample line but HELP/TYPE on the bare name.
  const std::string labels =
      obs::format_label("git_describe", "v1.2-3-gabc") + ',' +
      obs::format_label("obs", "on");
  const obs::MetricId id =
      obs::register_gauge("tcsa_test_info", "labeled info gauge", labels);
  obs::gauge_set(id, 1.0);

  const std::string text = obs::snapshot().to_prometheus();
  EXPECT_NE(text.find("# HELP tcsa_test_info labeled info gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tcsa_test_info gauge"), std::string::npos);
  EXPECT_NE(
      text.find(
          "tcsa_test_info{git_describe=\"v1.2-3-gabc\",obs=\"on\"} 1"),
      std::string::npos);
  // The bare name must never appear as an unlabeled sample.
  EXPECT_EQ(text.find("\ntcsa_test_info 1"), std::string::npos);

  // The JSON artifact keys the series by name{labels} so the strict
  // importer round-trips it as an opaque gauge key.
  const std::string json = obs::snapshot().to_json();
  EXPECT_NE(
      json.find("tcsa_test_info{git_describe=\\\"v1.2-3-gabc\\\""),
      std::string::npos);
}

TEST_F(ObsTest, FormatLabelEscapesQuotesBackslashesAndNewlines) {
  EXPECT_EQ(obs::format_label("path", "a\\b"), "path=\"a\\\\b\"");
  EXPECT_EQ(obs::format_label("msg", "say \"hi\""),
            "msg=\"say \\\"hi\\\"\"");
  EXPECT_EQ(obs::format_label("nl", "two\nlines"),
            "nl=\"two\\nlines\"");
}

TEST_F(ObsTest, SameNameDifferentLabelsAreDistinctGaugeSeries) {
  const std::string a = obs::format_label("loop", "0");
  const std::string b = obs::format_label("loop", "1");
  const obs::MetricId ga =
      obs::register_gauge("tcsa_test_per_loop", "per-loop gauge", a);
  const obs::MetricId gb =
      obs::register_gauge("tcsa_test_per_loop", "per-loop gauge", b);
  EXPECT_NE(ga, gb);
  obs::gauge_set(ga, 10.0);
  obs::gauge_set(gb, 20.0);

  const obs::MetricsSnapshot snap = obs::snapshot();
  int seen = 0;
  for (const auto& gauge : snap.gauges) {
    if (gauge.name != "tcsa_test_per_loop") continue;
    ++seen;
    EXPECT_DOUBLE_EQ(gauge.value, gauge.labels == a ? 10.0 : 20.0);
  }
  EXPECT_EQ(seen, 2);
}

TEST_F(ObsTest, AlwaysGaugeRecordsWhileRecordingIsDisabled) {
  const obs::MetricId id =
      obs::register_gauge("tcsa_test_always_gauge", "gated-off gauge");
  obs::set_enabled(false);
  obs::gauge_set(id, 7.0);  // gated: must not land
  obs::gauge_set_always(id, 42.0);
  obs::set_enabled(true);
  EXPECT_DOUBLE_EQ(obs::snapshot().gauge_value("tcsa_test_always_gauge"),
                   42.0);
}

// ---------------------------------------------------------------- tracing

TEST_F(ObsTest, SpansRecordOnlyWhileEnabled) {
  obs::clear_trace();
  {
    TCSA_TRACE_SPAN("test.disabled");
  }
  EXPECT_EQ(obs::trace_event_count(), 0u);
  obs::set_tracing_enabled(true);
  {
    TCSA_TRACE_SPAN_VAR(span, "test.enabled");
    EXPECT_TRUE(span.active());
    span.set_arg("items", 3);
  }
  obs::set_tracing_enabled(false);
  EXPECT_EQ(obs::trace_event_count(), 1u);
  obs::clear_trace();
}

TEST_F(ObsTest, ChromeTraceJsonHasEventFields) {
  obs::clear_trace();
  obs::set_tracing_enabled(true);
  obs::record_span("test.span", 10, 5, "pages", 17);
  obs::set_tracing_enabled(false);
  std::ostringstream out;
  obs::write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test.span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"pages\": 17"), std::string::npos);
  obs::clear_trace();
}

TEST_F(ObsTest, TraceCollectsSpansAcrossThreads) {
  obs::clear_trace();
  obs::set_tracing_enabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 10; ++i) {
        TCSA_TRACE_SPAN("test.worker");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  obs::set_tracing_enabled(false);
  EXPECT_EQ(obs::trace_event_count(), 40u);
  obs::clear_trace();
}

// ------------------------------------------------------------ integration

TEST_F(ObsTest, OptSearchReportsNodes) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const obs::MetricsSnapshot before = obs::snapshot();
  const OptResult r = opt_frequencies(w, 2);
  ASSERT_FALSE(r.S.empty());
  const obs::MetricsSnapshot delta = obs::snapshot().minus(before);
  EXPECT_GT(delta.counter_value("tcsa_opt_searches_total"), 0u);
  EXPECT_GT(delta.counter_value("tcsa_opt_nodes_total"), 0u);
  EXPECT_GT(delta.counter_value("tcsa_opt_leaves_total"), 0u);
}

TEST_F(ObsTest, SimulatorReportsRequestsAndWaits) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const PamadSchedule s = schedule_pamad(w, 2);
  SimConfig config;
  config.requests.count = 500;
  const obs::MetricsSnapshot before = obs::snapshot();
  const SimResult r = simulate_requests(s.program, w, config);
  EXPECT_EQ(r.requests, 500u);
  const obs::MetricsSnapshot delta = obs::snapshot().minus(before);
  EXPECT_EQ(delta.counter_value("tcsa_sim_requests_total"), 500u);
  const obs::HistogramSnapshot* waits =
      delta.histogram("tcsa_sim_wait_slots");
  ASSERT_NE(waits, nullptr);
  EXPECT_EQ(waits->total(), 500u);
}

TEST_F(ObsTest, SweepReportCarriesItsOwnDelta) {
  const Workload w = make_workload({2, 4}, {2, 4});
  SweepConfig config;
  config.sim.requests.count = 200;
  // Metrics recording is forced on by the call even when currently off.
  obs::set_enabled(false);
  const SweepReport report = run_sweep_with_metrics(w, config);
  EXPECT_FALSE(obs::enabled());  // prior state restored
  ASSERT_FALSE(report.points.empty());
  EXPECT_EQ(report.metrics.counter_value("tcsa_sweep_points_total"),
            report.points.size());
  EXPECT_GT(report.metrics.counter_value("tcsa_sim_requests_total"), 0u);
  EXPECT_GT(report.metrics.counter_value("tcsa_placement_runs_total"), 0u);
}

TEST_F(ObsTest, ParallelSearchTracesSubtreeSpans) {
  obs::clear_trace();
  obs::set_tracing_enabled(true);
  const Workload w = make_workload({2, 4, 8, 16}, {3, 5, 4, 3});
  const OptResult r = opt_frequencies(w, 3, 2);
  ASSERT_FALSE(r.S.empty());
  obs::set_tracing_enabled(false);
  std::ostringstream out;
  obs::write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("opt.ladder_search"), std::string::npos);
  EXPECT_NE(json.find("opt.subtree"), std::string::npos);
  obs::clear_trace();
}

TEST_F(ObsTest, RingOverflowCountsDroppedSpans) {
  obs::clear_trace();
  obs::set_tracing_enabled(true);
  const obs::MetricsSnapshot before = obs::snapshot();
  ASSERT_EQ(obs::trace_spans_dropped(), 0u);

  // One thread fills its ring past capacity; every overwrite must be counted
  // so merged traces can be flagged as incomplete instead of silently short.
  const std::size_t capacity = obs::trace_ring_capacity();
  const std::size_t extra = 100;
  for (std::size_t i = 0; i < capacity + extra; ++i) {
    TCSA_TRACE_SPAN("test.overflow");
  }
  obs::set_tracing_enabled(false);

  EXPECT_GE(obs::trace_spans_dropped(), extra);
  const obs::MetricsSnapshot delta = obs::snapshot().minus(before);
  EXPECT_EQ(delta.counter_value("tcsa_trace_spans_dropped_total"),
            obs::trace_spans_dropped());

  // The retained window still holds exactly `capacity` newest spans.
  std::ostringstream out;
  obs::write_chrome_trace(out);
  obs::clear_trace();
  EXPECT_EQ(obs::trace_spans_dropped(), 0u);  // reset with the buffer
}

TEST_F(ObsTest, TraceEpochWallClockIsSane) {
  // The wall anchor pairs with the steady epoch for cross-process alignment;
  // it must be a plausible microsecond UNIX timestamp (after 2020-01-01).
  EXPECT_GT(obs::trace_epoch_wall_us(), 1577836800000000ULL);
  EXPECT_EQ(obs::trace_epoch_wall_us(), obs::trace_epoch_wall_us());
}

#endif  // TCSA_OBS_COMPILED

}  // namespace
}  // namespace tcsa
