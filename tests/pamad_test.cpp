// Tests for PAMAD (Section 4): the Algorithm 3 frequency search including
// the paper's full worked example, and the assembled schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "core/channel_bound.hpp"
#include "core/delay_model.hpp"
#include "core/pamad.hpp"
#include "model/appearance_index.hpp"
#include "model/validate.hpp"
#include "sim/broadcast_sim.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

// ------------------------------------------ the paper's worked example (Fig 2)

TEST(PamadFrequencies, WorkedExampleRatiosAndFrequencies) {
  // P = (3,5,3), t = (2,4,8), 3 channels (minimum is 4):
  // r1_opt = 2, r2_opt = 2 -> S = (4, 2, 1), t_major = 9.
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const PamadFrequencies f = pamad_frequencies(w, 3);
  ASSERT_EQ(f.r.size(), 2u);
  EXPECT_EQ(f.r[0], 2);
  EXPECT_EQ(f.r[1], 2);
  EXPECT_EQ(f.S, (std::vector<SlotCount>{4, 2, 1}));
  EXPECT_EQ(f.t_major, 9);
}

TEST(PamadFrequencies, WorkedExampleStageDelays) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const PamadFrequencies f = pamad_frequencies(w, 3);
  ASSERT_EQ(f.stage_delay.size(), 2u);
  EXPECT_DOUBLE_EQ(f.stage_delay[0], 0.0);      // D'_2 at r1 = 2
  EXPECT_NEAR(f.stage_delay[1], 0.042, 2e-3);   // D'_3 at r2 = 2
}

TEST(PamadFrequencies, LastGroupAlwaysOnce) {
  for (const GroupSizeShape shape : paper_shapes()) {
    const Workload w = make_paper_workload(shape);
    for (const SlotCount channels : {1, 3, 10, 30}) {
      const PamadFrequencies f = pamad_frequencies(w, channels);
      EXPECT_EQ(f.S.back(), 1);
    }
  }
}

TEST(PamadFrequencies, FrequenciesAreNonIncreasing) {
  // S_i = prod_{j >= i} r_j with every r >= 1.
  for (const GroupSizeShape shape : paper_shapes()) {
    const Workload w = make_paper_workload(shape);
    for (const SlotCount channels : {1, 2, 7, 20, 45}) {
      const PamadFrequencies f = pamad_frequencies(w, channels);
      for (std::size_t g = 1; g < f.S.size(); ++g)
        EXPECT_LE(f.S[g], f.S[g - 1]);
    }
  }
}

TEST(PamadFrequencies, SufficientChannelsReachZeroDelay) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const PamadFrequencies f = pamad_frequencies(w, min_channels(w));
  EXPECT_DOUBLE_EQ(f.predicted_delay, 0.0);
}

TEST(PamadFrequencies, SingleGroupIsTrivial) {
  const Workload w = make_workload({4}, {20});
  const PamadFrequencies f = pamad_frequencies(w, 2);
  EXPECT_EQ(f.S, (std::vector<SlotCount>{1}));
  EXPECT_TRUE(f.r.empty());
  EXPECT_EQ(f.t_major, 10);
  // 20 pages / 2 channels -> spacing 10 > 4: delay (10-4)^2/20 = 1.8.
  EXPECT_DOUBLE_EQ(f.predicted_delay, 1.8);
}

TEST(PamadFrequencies, RejectsZeroChannels) {
  const Workload w = make_workload({2}, {1});
  EXPECT_THROW(pamad_frequencies(w, 0), std::invalid_argument);
}

TEST(PamadFrequencies, MoreChannelsEssentiallyMonotone) {
  // The greedy stage search can regress slightly when an extra channel
  // flips a stage's discrete choice; the trend must still be a steep
  // monotone-ish decline (small local upticks only, and the endpoints
  // strictly ordered).
  for (const GroupSizeShape shape : paper_shapes()) {
    const Workload w = make_paper_workload(shape, 6, 300, 4, 2);
    double last = std::numeric_limits<double>::infinity();
    for (SlotCount channels = 1; channels <= min_channels(w); ++channels) {
      const double d = pamad_frequencies(w, channels).predicted_delay;
      EXPECT_LE(d, std::max(last * 1.25, last + 0.3))
          << shape_name(shape) << " channels=" << channels;
      last = d;
    }
    EXPECT_DOUBLE_EQ(
        pamad_frequencies(w, min_channels(w)).predicted_delay, 0.0);
    EXPECT_GT(pamad_frequencies(w, 1).predicted_delay, 1.0);
  }
}

TEST(PamadFrequencies, ObjectiveVariantsAgreeClosely) {
  // A1 ablation: the two stage objectives share the same minimiser in the
  // continuous limit, so the greedy lands on near-identical frequencies.
  // (Pointwise dominance does not hold — a greedy can be lucky under either
  // objective at individual channel counts — so compare the sweeps.)
  for (const GroupSizeShape shape : paper_shapes()) {
    const Workload w = make_paper_workload(shape, 6, 300, 4, 2);
    double paper_sum = 0.0, exact_sum = 0.0;
    for (SlotCount channels = 1; channels <= min_channels(w); ++channels) {
      paper_sum += pamad_frequencies(w, channels, PamadObjective::kPaper)
                       .predicted_delay;
      exact_sum += pamad_frequencies(w, channels, PamadObjective::kExact)
                       .predicted_delay;
    }
    EXPECT_NEAR(exact_sum / paper_sum, 1.0, 0.10) << shape_name(shape);
  }
}

// ------------------------------------------------------------- full schedule

TEST(PamadSchedule, WorkedExampleProgramShape) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const PamadSchedule s = schedule_pamad(w, 3);
  EXPECT_EQ(s.program.channels(), 3);
  EXPECT_EQ(s.program.cycle_length(), 9);
  EXPECT_EQ(s.program.occupied(), 25);
  EXPECT_EQ(s.window_overflows, 0);
  const AppearanceIndex idx(s.program, w.total_pages());
  for (PageId page = 0; page < w.total_pages(); ++page) {
    const GroupId g = w.group_of(page);
    EXPECT_EQ(idx.count(page),
              s.frequencies.S[static_cast<std::size_t>(g)]);
  }
}

TEST(PamadSchedule, ValidWheneverChannelsSufficient) {
  // At the Theorem 3.1 minimum PAMAD must deliver a zero-delay (valid)
  // program, like SUSC.
  for (const GroupSizeShape shape : paper_shapes()) {
    const Workload w = make_paper_workload(shape, 5, 150, 2, 2);
    const PamadSchedule s = schedule_pamad(w, min_channels(w));
    SimConfig config;
    config.requests.count = 5000;
    const SimResult sim = simulate_requests(s.program, w, config);
    EXPECT_NEAR(sim.avg_delay, 0.0, 0.35)
        << shape_name(shape) << ": " << w.describe();
  }
}

TEST(PamadSchedule, SimulatedDelayTracksPrediction) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 8, 1000, 4, 2);
  for (const SlotCount channels : {3, 8, 16, 32}) {
    const PamadSchedule s = schedule_pamad(w, channels);
    SimConfig config;
    config.requests.count = 30000;
    const SimResult sim = simulate_requests(s.program, w, config);
    EXPECT_NEAR(sim.avg_delay, s.frequencies.predicted_delay,
                std::max(1.0, s.frequencies.predicted_delay * 0.25))
        << "channels=" << channels;
  }
}

TEST(PamadSchedule, OneFifthRuleDelayNearlyIgnorable) {
  // Section 5's headline: at ~1/5 of the minimum channels, AvgD is tiny
  // relative to the single-channel delay. The claim is about workloads
  // whose minimum is tens of channels (Fig. 5(d): 64); with single-digit
  // minima "one fifth" is one or two channels and the ratio test is
  // meaningless, so such shapes are skipped.
  for (const GroupSizeShape shape : paper_shapes()) {
    const Workload w = make_paper_workload(shape);
    if (min_channels(w) < 15) continue;
    const SlotCount fifth = (min_channels(w) + 4) / 5;
    const double at_one = pamad_frequencies(w, 1).predicted_delay;
    const double at_fifth = pamad_frequencies(w, fifth).predicted_delay;
    // Uniform/normal land around 2%; the steepest skew sits just above 5%.
    EXPECT_LT(at_fifth, at_one * 0.06) << shape_name(shape);
  }
}

TEST(PamadSchedule, PaperScaleOverflowsAreRare) {
  for (const GroupSizeShape shape : paper_shapes()) {
    const Workload w = make_paper_workload(shape);
    for (const SlotCount channels : {1, 7, 21, 50}) {
      const PamadSchedule s = schedule_pamad(w, channels);
      const auto copies = static_cast<double>(s.program.occupied());
      EXPECT_LT(static_cast<double>(s.window_overflows), copies * 0.01)
          << shape_name(shape) << " channels=" << channels;
    }
  }
}

// Stage caps: the sweep bound from Algorithm 3 must never stop the search
// below the zero-delay ratio when bandwidth allows it.
TEST(PamadFrequencies, CapReachesZeroDelayRatio) {
  const Workload w = make_workload({2, 4}, {2, 3});  // needs 2 channels
  const PamadFrequencies f = pamad_frequencies(w, 2);
  EXPECT_DOUBLE_EQ(f.predicted_delay, 0.0);
  EXPECT_EQ(f.S[1], 1);
  EXPECT_EQ(f.S[0], 2);  // the SUSC ratio t2/t1
}

}  // namespace
}  // namespace tcsa
