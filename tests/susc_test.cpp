// Tests for the SUSC scheduler (Section 3.2) and its structural guarantees
// (Theorems 3.2 and 3.3).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/channel_bound.hpp"
#include "core/susc.hpp"
#include "model/appearance_index.hpp"
#include "model/validate.hpp"
#include "sim/broadcast_sim.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

TEST(Susc, RejectsInsufficientChannels) {
  const Workload w = make_workload({2, 4}, {2, 3});  // needs 2
  EXPECT_THROW(schedule_susc(w, 1), std::invalid_argument);
}

TEST(Susc, PaperExampleValidAtMinimum) {
  const Workload w = make_workload({2, 4}, {2, 3});
  const BroadcastProgram p = schedule_susc(w);  // 2 channels
  EXPECT_EQ(p.channels(), 2);
  EXPECT_EQ(p.cycle_length(), 4);  // t_h
  EXPECT_TRUE(is_valid_program(p, w));
}

TEST(Susc, CycleLengthIsLargestExpectedTime) {
  const Workload w = make_workload({2, 4, 8}, {1, 1, 1});
  EXPECT_EQ(schedule_susc(w).cycle_length(), 8);
}

TEST(Susc, EveryPageBroadcastExactlyCycleOverT) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram p = schedule_susc(w);
  const AppearanceIndex idx(p, w.total_pages());
  for (PageId page = 0; page < w.total_pages(); ++page) {
    const SlotCount t = w.expected_time_of(page);
    EXPECT_EQ(idx.count(page), p.cycle_length() / t)
        << "page " << page << " has wrong replication count";
  }
}

TEST(Susc, Theorem33SpacingIsExactlyT) {
  // Each page's appearances form an arithmetic progression with step t_i on
  // a single channel.
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram p = schedule_susc(w);
  const AppearanceIndex idx(p, w.total_pages());
  for (PageId page = 0; page < w.total_pages(); ++page) {
    const SlotCount t = w.expected_time_of(page);
    const auto a = idx.appearances(page);
    for (std::size_t k = 1; k < a.size(); ++k)
      EXPECT_EQ(a[k] - a[k - 1], t) << "page " << page;
    EXPECT_LE(a.front(), t) << "page " << page;  // Condition (1)
  }
}

TEST(Susc, PagesStayOnOneChannel) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram p = schedule_susc(w);
  for (PageId page = 0; page < w.total_pages(); ++page) {
    int channels_used = 0;
    for (SlotCount ch = 0; ch < p.channels(); ++ch) {
      bool on_channel = false;
      for (SlotCount s = 0; s < p.cycle_length(); ++s)
        if (p.at(ch, s) == page) on_channel = true;
      if (on_channel) ++channels_used;
    }
    EXPECT_EQ(channels_used, 1) << "page " << page;
  }
}

TEST(Susc, ExtraChannelsStillValid) {
  const Workload w = make_workload({2, 4}, {2, 3});
  for (SlotCount channels = 2; channels <= 6; ++channels) {
    const BroadcastProgram p = schedule_susc(w, channels);
    EXPECT_TRUE(is_valid_program(p, w)) << channels << " channels";
  }
}

TEST(Susc, SingleGroupSingleChannel) {
  const Workload w = make_workload({4}, {4});
  const BroadcastProgram p = schedule_susc(w);  // 1 channel, cycle 4
  EXPECT_EQ(p.channels(), 1);
  EXPECT_EQ(p.occupied(), 4);
  EXPECT_TRUE(is_valid_program(p, w));
}

TEST(Susc, FullyPackedWhenDemandIsIntegral) {
  // Demand = 4/2 + 8/4 = 4 channels exactly: zero idle slots.
  const Workload w = make_workload({2, 4}, {4, 8});
  const BroadcastProgram p = schedule_susc(w);
  EXPECT_EQ(p.channels(), 4);
  EXPECT_EQ(p.occupied(), p.capacity());
}

TEST(Susc, SimulatedClientsNeverMissDeadline) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram p = schedule_susc(w);
  SimConfig config;
  config.requests.count = 2000;
  const SimResult result = simulate_requests(p, w, config);
  EXPECT_DOUBLE_EQ(result.avg_delay, 0.0);
  EXPECT_DOUBLE_EQ(result.miss_rate, 0.0);
}

// Property sweep: SUSC produces a valid program at the Theorem 3.1 minimum
// across shapes, ladder ratios and sizes — the paper's core sufficiency
// claim (Theorems 3.1 + 3.2 + 3.3 together).
struct SuscCase {
  GroupSizeShape shape;
  GroupId h;
  SlotCount n;
  SlotCount t1;
  SlotCount c;
};

class SuscProperty : public ::testing::TestWithParam<SuscCase> {};

TEST_P(SuscProperty, ValidAtMinimumChannels) {
  const SuscCase& tc = GetParam();
  const Workload w = make_paper_workload(tc.shape, tc.h, tc.n, tc.t1, tc.c);
  const BroadcastProgram p = schedule_susc(w);
  EXPECT_EQ(p.channels(), min_channels(w));
  const ValidityReport report = validate_program(p, w);
  EXPECT_TRUE(report.valid) << w.describe() << "\nfirst violation: "
                            << (report.violations.empty()
                                    ? "none"
                                    : report.violations.front());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SuscProperty,
    ::testing::Values(
        SuscCase{GroupSizeShape::kUniform, 1, 5, 3, 2},
        SuscCase{GroupSizeShape::kUniform, 2, 10, 2, 2},
        SuscCase{GroupSizeShape::kUniform, 3, 11, 2, 2},
        SuscCase{GroupSizeShape::kUniform, 4, 64, 2, 2},
        SuscCase{GroupSizeShape::kUniform, 8, 1000, 4, 2},
        SuscCase{GroupSizeShape::kNormal, 8, 1000, 4, 2},
        SuscCase{GroupSizeShape::kLSkewed, 8, 1000, 4, 2},
        SuscCase{GroupSizeShape::kSSkewed, 8, 1000, 4, 2},
        SuscCase{GroupSizeShape::kZipf, 6, 300, 5, 2},
        SuscCase{GroupSizeShape::kBinomial, 5, 200, 3, 3},
        SuscCase{GroupSizeShape::kNormal, 4, 100, 1, 4},
        SuscCase{GroupSizeShape::kUniform, 3, 30, 7, 3},
        SuscCase{GroupSizeShape::kLSkewed, 6, 500, 2, 2},
        SuscCase{GroupSizeShape::kSSkewed, 5, 77, 3, 2}),
    [](const auto& info) {
      const SuscCase& tc = info.param;
      return shape_name(tc.shape) + "_h" + std::to_string(tc.h) + "_n" +
             std::to_string(tc.n) + "_t" + std::to_string(tc.t1) + "_c" +
             std::to_string(tc.c);
    });

// Mixed-ratio ladders (the divisibility generalisation) also work.
TEST(Susc, MixedRatioLadder) {
  const Workload w = make_workload({2, 4, 12, 24}, {3, 4, 6, 10});
  const BroadcastProgram p = schedule_susc(w);
  EXPECT_TRUE(is_valid_program(p, w));
}

}  // namespace
}  // namespace tcsa
