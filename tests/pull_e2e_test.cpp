// pull_e2e_test.cpp — ISSUE acceptance for live hybrid push/pull serving:
// a 4-loop `tcsactl serve --pull-channels 1` faces an impatient loadgen
// fleet (coalesced pull airings, client-observed coalescing factor > 1)
// and a traced impatient tune client whose timed-out pages come back on
// the pull channel, with the pull airing span in causal order through the
// merged cross-process trace. A second test drives the loadgen pull-SLO
// exit-code gate, and the obs-off build keeps the protocol itself working.
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "model/serialize.hpp"
#include "model/workload.hpp"
#include "obs/artifact.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/subprocess.hpp"

#ifndef TCSACTL_PATH
#error "pull_e2e_test requires -DTCSACTL_PATH=\"...\" from CMake"
#endif

using namespace tcsa;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

/// Cross-process orderings on the merged timeline carry the clock
/// estimator's error bound (see trace_e2e_test.cpp).
constexpr std::int64_t kClockSlackUs = 1000;

// Under ThreadSanitizer the spawned loadgen issues requests orders of
// magnitude slower, so demand never outruns the pull channel and the
// coalescing factor legitimately sits at 1. The protocol and race coverage
// still matter there; the coalescing *pressure* assertions are the normal
// build's job (and test_pull pins coalescing in-process under TSan too).
#if defined(__SANITIZE_THREAD__)
constexpr bool kUnderTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kUnderTsan = true;
#else
constexpr bool kUnderTsan = false;
#endif
#else
constexpr bool kUnderTsan = false;
#endif

using Journey = std::map<std::string, std::int64_t>;

class PullE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path(testing::TempDir()) /
            ("tcsa_pull_e2e_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(root_);
    std::ofstream out(path("workload.txt"));
    save_workload(out, make_workload({2, 4, 8}, {3, 5, 3}));
  }

  void TearDown() override {
    // Failed runs keep their artifacts for the CI uploader (ci.yml).
    if (::testing::Test::HasFailure()) return;
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  std::string path(const char* leaf) const { return (root_ / leaf).string(); }

  int wait_for_port(const std::string& file) const {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (std::chrono::steady_clock::now() < deadline) {
      if (std::filesystem::exists(file)) {
        const std::string contents = slurp(file);
        if (!contents.empty() && contents.back() == '\n')
          return std::stoi(contents);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return 0;
  }

  Subprocess spawn_serve(std::vector<std::string> extra_flags) {
    // Generous --slots: the serve must outlive a loadgen ramp plus a tune
    // run even on a starved CI box; the tests SIGTERM it when done.
    std::vector<std::string> argv = {
        TCSACTL_PATH,     "serve",
        "--workload",     path("workload.txt"),
        "--port",         "0",
        "--port-file",    path("port.txt"),
        "--slot-us",      "500",
        "--slots",        "60000",
        "--pull-channels", "1"};
    argv.insert(argv.end(), extra_flags.begin(), extra_flags.end());
    SpawnOptions options;
    options.stdout_path = path("serve.stdout.txt");
    options.stderr_path = path("serve.stderr.txt");
    Subprocess serve = Subprocess::spawn(argv, options);
    port_ = wait_for_port(path("port.txt"));
    EXPECT_GT(port_, 0) << "server never wrote its port file; stderr:\n"
                        << slurp(path("serve.stderr.txt"));
    return serve;
  }

  /// Every *.req.* instant span of the merged trace, keyed by trace id.
  std::map<std::uint64_t, Journey> load_journeys(const std::string& file) {
    std::map<std::uint64_t, Journey> journeys;
    const obs::JsonValue doc = obs::json_parse(slurp(file));
    for (const obs::JsonValue& event :
         doc.at("traceEvents").expect_array("traceEvents").array) {
      const obs::JsonValue* name = event.find("name");
      if (name == nullptr || name->string.find(".req.") == std::string::npos)
        continue;
      const obs::JsonValue* args = event.find("args");
      if (args == nullptr) continue;
      const obs::JsonValue* id = args->find("trace_id");
      if (id == nullptr) continue;
      const std::uint64_t trace_id = id->expect_uint("trace_id");
      const auto ts =
          static_cast<std::int64_t>(event.at("ts").expect_number("ts"));
      journeys[trace_id].emplace(name->string, ts);
    }
    return journeys;
  }

  std::filesystem::path root_;
  int port_ = 0;
};

#if TCSA_OBS_COMPILED

TEST_F(PullE2E, ImpatientAudienceIsServedByCoalescedTracedPullAirings) {
  const std::string art = path("art");
  Subprocess serve = spawn_serve({"--loops", "4", "--pull-policy", "lwf",
                                  "--metrics-out", path("metrics.json"),
                                  "--out-dir", art, "--run-id", "pull-e2e"});

  // Phase A — a flash crowd of impatient sessions. 48 sessions over the 4
  // broadcast channels issue wants for the page they just saw and time out
  // after one slot, so whole cohorts convert to kReq in the same slot and
  // the demand table coalesces them into shared airings.
  SpawnOptions loadgen_options;
  loadgen_options.stdout_path = path("loadgen.stdout.txt");
  loadgen_options.stderr_path = path("loadgen.stderr.txt");
  ASSERT_EQ(
      run_command({TCSACTL_PATH, "loadgen", "--port", std::to_string(port_),
                   "--sessions", "48", "--threads", "2", "--duration-ms",
                   "3000", "--request-every", "16", "--patience-slots", "1",
                   "--json-out", path("loadgen.json")},
                  loadgen_options),
      0)
      << slurp(path("loadgen.stderr.txt"));
  const obs::MetricsSnapshot fleet =
      obs::snapshot_from_json(slurp(path("loadgen.json")));
  EXPECT_GT(fleet.counter_value("tcsa_loadgen_wants_total"), 0u);
  EXPECT_GT(fleet.counter_value("tcsa_loadgen_wants_pulled_total"), 0u);
  if (!kUnderTsan) {
    // A TSan-instrumented fleet can issue thousands of kReqs yet tear down
    // before its slowed reader threads drain a single kPull frame, so the
    // delivery-side fleet assertions belong to the normal build only (the
    // tune phase below still pins pull delivery under TSan).
    EXPECT_GE(fleet.counter_value("tcsa_loadgen_pull_frames_total"), 1u);
    EXPECT_GE(fleet.counter_value("tcsa_loadgen_pull_completions_total"), 1u);
    EXPECT_GT(fleet.gauge_value("tcsa_loadgen_pull_coalesced_waiters_mean"),
              1.0)
        << "cohorts timing out together must share pull airings";
  }

  // Phase B — one traced impatient client, after the crowd is gone so the
  // single pull channel answers within a slot or two of each timeout.
  SpawnOptions tune_options;
  tune_options.stdout_path = path("tune.stdout.txt");
  tune_options.stderr_path = path("tune.stderr.txt");
  ASSERT_EQ(run_command({TCSACTL_PATH, "tune", "--port",
                         std::to_string(port_), "--slots", "600",
                         "--requests", "16", "--patience-slots", "1",
                         "--out-dir", art, "--run-id", "pull-e2e-tune"},
                        tune_options),
            0)
      << slurp(path("tune.stderr.txt"));

  ASSERT_EQ(::kill(static_cast<pid_t>(serve.pid()), SIGTERM), 0);
  EXPECT_EQ(serve.wait(), 0) << slurp(path("serve.stderr.txt"));

  // Every timed-out want was served, and the pull channel (not luck with
  // the broadcast schedule) answered at least some of them.
  const obs::JsonValue summary =
      obs::json_parse(slurp(art + "/tune.summary.json"));
  const obs::JsonValue& wants = summary.at("wants");
  EXPECT_EQ(wants.at("issued").expect_uint("issued"), 16u);
  EXPECT_EQ(wants.at("undecided").expect_uint("undecided"), 0u);
  EXPECT_GE(wants.at("pulled").expect_uint("pulled"), 1u);
  EXPECT_GE(wants.at("pull_completed").expect_uint("pull_completed"), 1u);
  const obs::JsonValue& requests = summary.at("requests");
  EXPECT_EQ(requests.at("completed").expect_uint("completed"),
            requests.at("sent").expect_uint("sent"))
      << "every want that timed out must still be served";

  // Server-side accounting agrees: demand arrived, airings went out, and
  // the fleet phase made the global coalescing factor exceed 1.
  const obs::MetricsSnapshot metrics =
      obs::snapshot_from_json(slurp(path("metrics.json")));
  EXPECT_GT(metrics.counter_value("tcsa_server_pull_reqs_total"), 0u);
  const std::uint64_t airings =
      metrics.counter_value("tcsa_server_pull_airings_total");
  EXPECT_GE(airings, 1u);
  if (kUnderTsan) {
    EXPECT_GE(metrics.counter_value("tcsa_server_pull_waiters_served_total"),
              airings);
  } else {
    EXPECT_GT(metrics.counter_value("tcsa_server_pull_waiters_served_total"),
              airings)
        << "coalescing factor (waiters served / airings) must exceed 1";
  }
  EXPECT_GE(metrics.counter_value("tcsa_server_reqs_pull_served_total"), 1u);

  // The merged timeline carries the pull airing span in causal order.
  SpawnOptions merge_options;
  merge_options.stdout_path = path("merge.stdout.txt");
  merge_options.stderr_path = path("merge.stderr.txt");
  ASSERT_EQ(run_command({TCSACTL_PATH, "trace", "merge", "--dir", art},
                        merge_options),
            0)
      << slurp(path("merge.stderr.txt"));
  EXPECT_NE(slurp(path("merge.stderr.txt")).find("1 clock-corrected"),
            std::string::npos);

  const std::map<std::uint64_t, Journey> journeys =
      load_journeys(art + "/journey.trace.json");
  std::size_t pull_journeys = 0;
  std::size_t pull_delivered = 0;
  std::size_t closed_pull_journeys = 0;
  for (const auto& [trace_id, journey] : journeys) {
    if (journey.count("server.req.pull_aired") == 0) continue;
    ++pull_journeys;
    const std::int64_t aired = journey.at("server.req.pull_aired");
    // Server-side stages are same-process: ordering is exact. The fleet
    // phase floods the server's bounded trace buffer, so early spans of a
    // journey may be gone — compare only what survived.
    // (`server.req.sched` is stamped on the session's worker loop AFTER
    // the demand was already posted to loop 0, so it is concurrent with —
    // not ordered against — the airing decision.)
    if (journey.count("server.req.recv")) {
      EXPECT_LE(journey.at("server.req.recv"), aired) << trace_id;
    }
    if (journey.count("client.req.sent") && journey.count("server.req.recv")) {
      EXPECT_LE(journey.at("client.req.sent"),
                journey.at("server.req.recv") + kClockSlackUs);
    }
    // A demand whose page happened to air on broadcast first was encoded
    // by THAT path before the (still scheduled) pull airing, so `encoded`
    // orders against `pull_aired` only for journeys the pull frame itself
    // delivered — the ones where the encode follows the airing decision.
    if (journey.count("server.req.encoded") == 0 ||
        journey.at("server.req.encoded") < aired)
      continue;
    ++pull_delivered;
    if (journey.count("server.req.flushed")) {
      EXPECT_LE(journey.at("server.req.encoded"),
                journey.at("server.req.flushed"));
      if (journey.count("client.req.first_byte")) {
        EXPECT_LE(journey.at("server.req.flushed"),
                  journey.at("client.req.first_byte") + kClockSlackUs);
        if (journey.count("client.req.done")) ++closed_pull_journeys;
      }
    }
  }
  EXPECT_GE(pull_journeys, 1u)
      << "the merged trace never saw server.req.pull_aired";
  EXPECT_GE(pull_delivered, 1u)
      << "no journey was encoded by the pull delivery path";
  EXPECT_GE(closed_pull_journeys, 1u)
      << "no pull-delivered journey closed end to end through the traced "
         "client";
}

#else  // !TCSA_OBS_COMPILED

// Obs-off contract: tracing and metrics compile out, but the pull protocol
// itself — wants, timeouts, kReq demand, kPull completions — still works.
TEST_F(PullE2E, ObsOffPullChannelStillServesImpatientClients) {
  Subprocess serve = spawn_serve({"--pull-policy", "lwf"});

  SpawnOptions tune_options;
  tune_options.stdout_path = path("tune.json");
  tune_options.stderr_path = path("tune.stderr.txt");
  ASSERT_EQ(run_command({TCSACTL_PATH, "tune", "--port",
                         std::to_string(port_), "--slots", "400",
                         "--requests", "8", "--patience-slots", "1",
                         "--json"},
                        tune_options),
            0)
      << slurp(path("tune.stderr.txt"));
  ASSERT_EQ(::kill(static_cast<pid_t>(serve.pid()), SIGTERM), 0);
  EXPECT_EQ(serve.wait(), 0) << slurp(path("serve.stderr.txt"));

  const obs::JsonValue summary = obs::json_parse(slurp(path("tune.json")));
  const obs::JsonValue& wants = summary.at("wants");
  EXPECT_EQ(wants.at("issued").expect_uint("issued"), 8u);
  EXPECT_EQ(wants.at("undecided").expect_uint("undecided"), 0u);
  const obs::JsonValue& requests = summary.at("requests");
  EXPECT_EQ(requests.at("completed").expect_uint("completed"),
            requests.at("sent").expect_uint("sent"));
}

#endif  // TCSA_OBS_COMPILED

// The loadgen pull-SLO gate is a CLI exit-code contract (used by the CI
// smoke): an absurd 1us p99 threshold must fail the run. maxrt on the
// serve side gives the second policy live coverage.
TEST_F(PullE2E, LoadgenPullSloGateFailsTheCli) {
  Subprocess serve = spawn_serve({"--pull-policy", "maxrt"});

  SpawnOptions loadgen_options;
  loadgen_options.stdout_path = path("loadgen.stdout.txt");
  loadgen_options.stderr_path = path("loadgen.stderr.txt");
  EXPECT_EQ(
      run_command({TCSACTL_PATH, "loadgen", "--port", std::to_string(port_),
                   "--sessions", "8", "--threads", "1", "--duration-ms",
                   "2000", "--request-every", "4", "--patience-slots", "1",
                   "--pull-slo-p99-us", "1"},
                  loadgen_options),
      1)
      << slurp(path("loadgen.stderr.txt"));
  EXPECT_NE(slurp(path("loadgen.stderr.txt")).find("pull"), std::string::npos);

  ASSERT_EQ(::kill(static_cast<pid_t>(serve.pid()), SIGTERM), 0);
  EXPECT_EQ(serve.wait(), 0) << slurp(path("serve.stderr.txt"));
}

}  // namespace
