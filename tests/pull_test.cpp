// pull_test.cpp — the on-demand pull plane: demand-table policy units
// (LWF vs max-response-time, coalescing, dedup, maintenance) and the
// loopback edge cases around a live AirServer with --pull-channels: one
// airing satisfying duplicate requests, a requester that disconnects
// before its airing, a request for a page outside the program, demand
// pruned by a shrinking hot swap, and the tolerance-estimator feed.
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "model/workload.hpp"
#include "net/framing.hpp"
#include "obs/metrics.hpp"
#include "online/estimator.hpp"
#include "server/air_server.hpp"
#include "server/pull_plane.hpp"
#include "server/tune_client.hpp"

using namespace tcsa;

namespace {

Workload paper_workload() { return make_workload({2, 4, 8}, {3, 5, 3}); }

PullWaiter waiter(std::uint64_t session, std::uint64_t slot) {
  return PullWaiter{session, /*trace_id=*/session * 1000 + slot, slot,
                    /*arrival_us=*/slot * 100};
}

// ------------------------------------------------------------ policy units

TEST(PullPolicy, ParseAndName) {
  PullPolicy policy = PullPolicy::kMaxResponseTime;
  EXPECT_TRUE(parse_pull_policy("lwf", &policy));
  EXPECT_EQ(policy, PullPolicy::kLongestWaitFirst);
  EXPECT_TRUE(parse_pull_policy("maxrt", &policy));
  EXPECT_EQ(policy, PullPolicy::kMaxResponseTime);
  EXPECT_FALSE(parse_pull_policy("fifo", &policy));
  EXPECT_EQ(policy, PullPolicy::kMaxResponseTime) << "bad parse must not write";
  EXPECT_STREQ(pull_policy_name(PullPolicy::kLongestWaitFirst), "lwf");
  EXPECT_STREQ(pull_policy_name(PullPolicy::kMaxResponseTime), "maxrt");
}

TEST(PullDemandTable, CoalescesSessionsAndDropsDuplicates) {
  PullDemandTable table;
  EXPECT_EQ(table.add(5, waiter(1, 10)), PullAdd::kNewPage);
  EXPECT_EQ(table.add(5, waiter(2, 11)), PullAdd::kCoalesced);
  EXPECT_EQ(table.add(5, waiter(1, 12)), PullAdd::kDuplicate)
      << "a session already waiting for the page must not be re-added";
  EXPECT_EQ(table.pending_pages(), 1u);
  EXPECT_EQ(table.pending_waiters(), 2u);
  EXPECT_TRUE(table.has_page(5));
  EXPECT_FALSE(table.has_page(4));

  const auto airing = table.pick(PullPolicy::kLongestWaitFirst, 20);
  ASSERT_TRUE(airing.has_value());
  EXPECT_EQ(airing->page, 5u);
  EXPECT_EQ(airing->first_request_slot, 10u);
  EXPECT_EQ(airing->waiters.size(), 2u) << "one airing pops every waiter";
  EXPECT_EQ(table.pending_pages(), 0u);
  EXPECT_EQ(table.pending_waiters(), 0u);
  EXPECT_FALSE(table.pick(PullPolicy::kLongestWaitFirst, 21).has_value());
}

TEST(PullDemandTable, DropSessionRemovesItsWaitersEverywhere) {
  PullDemandTable table;
  table.add(1, waiter(7, 0));
  table.add(2, waiter(7, 1));
  table.add(2, waiter(8, 2));
  EXPECT_EQ(table.drop_session(7), 2u);
  EXPECT_FALSE(table.has_page(1)) << "a page with no audience left vanishes";
  EXPECT_TRUE(table.has_page(2));
  EXPECT_EQ(table.pending_waiters(), 1u);
  EXPECT_EQ(table.drop_session(99), 0u);
}

TEST(PullDemandTable, DropPagesAtOrAboveIsTheSwapHook) {
  PullDemandTable table;
  table.add(2, waiter(1, 0));
  table.add(8, waiter(2, 1));
  table.add(8, waiter(3, 1));
  table.add(9, waiter(4, 2));
  EXPECT_EQ(table.drop_pages_at_or_above(8), 3u);
  EXPECT_EQ(table.pending_pages(), 1u);
  EXPECT_TRUE(table.has_page(2));
  EXPECT_EQ(table.drop_pages_at_or_above(0), 1u);
  EXPECT_EQ(table.pending_waiters(), 0u);
}

// LWF maximizes TOTAL accumulated wait (count · now − Σ arrivals), maxrt
// the OLDEST waiter's age — a popular-but-recent page beats a lone old
// request under LWF and loses under maxrt.
TEST(PullDemandTable, LwfAndMaxrtDisagreeOnPopularVsOld) {
  const auto fill = [](PullDemandTable& table) {
    table.add(1, waiter(10, 5));  // page 1: three waiters since slot 5
    table.add(1, waiter(11, 5));
    table.add(1, waiter(12, 5));
    table.add(2, waiter(13, 0));  // page 2: one waiter since slot 0
  };
  PullDemandTable lwf;
  fill(lwf);
  const auto by_lwf = lwf.pick(PullPolicy::kLongestWaitFirst, 10);
  ASSERT_TRUE(by_lwf.has_value());
  EXPECT_EQ(by_lwf->page, 1u) << "3*(10-5)=15 total wait beats 10";

  PullDemandTable maxrt;
  fill(maxrt);
  const auto by_maxrt = maxrt.pick(PullPolicy::kMaxResponseTime, 10);
  ASSERT_TRUE(by_maxrt.has_value());
  EXPECT_EQ(by_maxrt->page, 2u) << "oldest wait 10 beats 5";
}

TEST(PullDemandTable, TiesBreakTowardTheLowerPageId) {
  PullDemandTable table;
  table.add(7, waiter(1, 4));
  table.add(3, waiter(2, 4));
  for (const PullPolicy policy :
       {PullPolicy::kLongestWaitFirst, PullPolicy::kMaxResponseTime}) {
    PullDemandTable fresh;
    fresh.add(7, waiter(1, 4));
    fresh.add(3, waiter(2, 4));
    const auto airing = fresh.pick(policy, 9);
    ASSERT_TRUE(airing.has_value());
    EXPECT_EQ(airing->page, 3u);
  }
}

TEST(PullDemandTable, OldestWaitTracksTheFirstRequest) {
  PullDemandTable table;
  EXPECT_EQ(table.oldest_wait(10), 0u);
  table.add(4, waiter(1, 7));
  table.add(2, waiter(2, 4));
  EXPECT_EQ(table.oldest_wait(10), 6u);
}

// --------------------------------------------------- live-server edge cases

/// Runs an AirServer on a background thread; stops and joins on scope exit.
class ServerHarness {
 public:
  ServerHarness(Workload workload, AirServerConfig config)
      : server_(std::move(workload), config),
        thread_([this] { server_.run(); }) {}
  ~ServerHarness() {
    server_.stop();
    if (thread_.joinable()) thread_.join();
  }
  AirServer& server() { return server_; }
  TuneClient::Options client_options(std::uint64_t mask) const {
    TuneClient::Options options;
    options.port = server_.port();
    options.channel_mask = mask;
    return options;
  }

 private:
  AirServer server_;
  std::thread thread_;
};

// A session asking twice for the same page holds ONE seat in the demand
// table, and the single kPull airing completes both of its pending
// requests — coalescing inside one session.
TEST(PullPlane, DuplicateRequestsShareOneAiring) {
#if TCSA_OBS_COMPILED
  obs::set_enabled(true);
  const obs::MetricsSnapshot before = obs::snapshot();
#endif
  AirServerConfig config;
  // A wide slot keeps both kReqs inside one inter-tick window even on a
  // loaded box — a tick between them would (correctly) split the airings.
  config.slot_us = 100000;
  config.max_slots = 6;
  config.pull_channels = 1;
  ServerHarness harness(paper_workload(), config);

  // Mask 0: no broadcast frames, so completion can only come via kPull.
  TuneClient client(harness.client_options(0));
  client.request_page(4);
  client.request_page(4);
  EXPECT_TRUE(client.run(0)) << "expected server EOF at max_slots";

  const TuneSummary summary = client.summary();
  EXPECT_EQ(summary.requests.sent, 2u);
  EXPECT_EQ(summary.requests.acked, 2u);
  EXPECT_EQ(summary.requests.completed, 2u)
      << "one pull airing must complete every pending request of its page";
  EXPECT_EQ(summary.wants.pull_frames, 1u);
  EXPECT_EQ(harness.server().pull_airings(), 1u);
  EXPECT_EQ(harness.server().pull_waiters_served(), 1u)
      << "the duplicate holds no second seat in the demand table";
#if TCSA_OBS_COMPILED
  const obs::MetricsSnapshot delta = obs::snapshot().minus(before);
  obs::set_enabled(false);
  EXPECT_EQ(delta.counter_value("tcsa_server_pull_reqs_total"), 1u);
  EXPECT_EQ(delta.counter_value("tcsa_server_pull_reqs_duplicate_total"), 1u);
  EXPECT_EQ(delta.counter_value("tcsa_server_pull_airings_total"), 1u);
  EXPECT_EQ(delta.counter_value("tcsa_server_reqs_pull_served_total"), 2u);
#endif
}

// A requester that hangs up before its airing must not win a pull slot:
// the HUP drops its demand long before the next (far-away) slot tick.
TEST(PullPlane, DisconnectBeforeAiringDropsTheDemand) {
#if TCSA_OBS_COMPILED
  obs::set_enabled(true);
  const obs::MetricsSnapshot before = obs::snapshot();
#endif
  AirServerConfig config;
  config.slot_us = 200000;  // next airing tick is 200ms away
  config.pull_channels = 1;
  {
    ServerHarness harness(paper_workload(), config);
    {
      TuneClient client(harness.client_options(0));
      client.request_page(2);  // returns only after the kReqAck
    }
    // The ack round trip proved the demand is in the table; the close
    // races only against a slot tick 200ms out.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_EQ(harness.server().pull_airings(), 0u)
        << "a vanished audience must not be aired to";
  }
#if TCSA_OBS_COMPILED
  const obs::MetricsSnapshot delta = obs::snapshot().minus(before);
  obs::set_enabled(false);
  EXPECT_EQ(delta.counter_value("tcsa_server_pull_waiters_dropped_total"), 1u);
  EXPECT_EQ(delta.counter_value("tcsa_server_pull_airings_total"), 0u);
#endif
}

// Demand for a page outside the program is acked (expected 0), counted,
// and dropped — never parked in the table forever.
TEST(PullPlane, RequestForUnknownPageIsCountedAndDropped) {
#if TCSA_OBS_COMPILED
  obs::set_enabled(true);
  const obs::MetricsSnapshot before = obs::snapshot();
#endif
  AirServerConfig config;
  config.slot_us = 1000;
  config.max_slots = 60;
  config.pull_channels = 1;
  ServerHarness harness(paper_workload(), config);  // pages 0..10

  TuneClient client(harness.client_options(0));
  client.request_page(99);
  EXPECT_TRUE(client.run(0));
  const TuneSummary summary = client.summary();
  EXPECT_EQ(summary.requests.acked, 1u);
  EXPECT_EQ(summary.requests.completed, 0u);
  EXPECT_EQ(harness.server().pull_airings(), 0u);
#if TCSA_OBS_COMPILED
  const obs::MetricsSnapshot delta = obs::snapshot().minus(before);
  obs::set_enabled(false);
  EXPECT_EQ(delta.counter_value("tcsa_server_pull_unknown_page_total"), 1u);
  EXPECT_EQ(delta.counter_value("tcsa_server_pull_reqs_total"), 0u);
#endif
}

// Swap-during-pending: a generation that shrinks the page universe prunes
// the demand it strands. Nine single-waiter demands (pages 2..10) drain at
// one LWF airing per slot in ascending page order; the swap activates at a
// major-cycle boundary at most 8 slots after its request, so at most 7 of
// them air first — the rest of pages >= 8 are deterministically dropped
// when the 8-page generation activates. Invariant: airings + dropped = 9.
TEST(PullPlane, ShrinkingSwapPrunesStrandedDemand) {
#if TCSA_OBS_COMPILED
  obs::set_enabled(true);
  const obs::MetricsSnapshot before = obs::snapshot();
#endif
  AirServerConfig config;
  config.slot_us = 20000;  // 20ms: nine acked kReqs land inside one slot
  config.pull_channels = 1;
  config.pull_policy = PullPolicy::kLongestWaitFirst;
  ServerHarness harness(paper_workload(), config);  // 11 pages

  TuneClient swapper(harness.client_options(net::kAllChannels));
  const SwapReply reply =
      swapper.request_swap(make_workload({2, 4, 8}, {3, 4, 1}));  // 8 pages
  ASSERT_TRUE(reply.accepted) << reply.error;
  std::thread swapper_pump([&] { swapper.run(0); });

  TuneClient puller(harness.client_options(0));
  for (PageId page = 2; page <= 10; ++page) puller.request_page(page);

  // Let the activation boundary (<= 8 slots) plus the surviving airings
  // pass: 20 slots of headroom.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  harness.server().stop();
  swapper_pump.join();
  EXPECT_TRUE(puller.run(0));

  const std::uint64_t airings = harness.server().pull_airings();
  EXPECT_GE(airings, 6u) << "pages 2..7 stay valid and must all air";
  EXPECT_LE(airings, 7u) << "at most 7 airings fit before the boundary, and "
                            "pages >= 8 are pruned at activation";
  EXPECT_EQ(puller.summary().requests.completed, airings)
      << "each single-waiter airing completes exactly one request";
#if TCSA_OBS_COMPILED
  const obs::MetricsSnapshot delta = obs::snapshot().minus(before);
  obs::set_enabled(false);
  EXPECT_EQ(delta.counter_value("tcsa_server_pull_waiters_dropped_total"),
            9u - airings);
#endif
}

// The demand table is a live sample of client tolerances: every pull
// airing feeds (airing slot - arrival slot) into the per-class estimator.
TEST(PullPlane, AiringsFeedTheToleranceEstimator) {
  AirServerConfig config;
  config.slot_us = 1000;
  config.max_slots = 80;
  config.pull_channels = 1;
  // The estimator lives on loop 0 and is only safe to read once run()
  // returned, so manage the thread directly instead of via ServerHarness.
  AirServer server(paper_workload(), config);
  std::thread runner([&] { server.run(); });
  {
    TuneClient::Options options;
    options.port = server.port();
    options.channel_mask = 0;
    TuneClient client(options);
    client.request_page(0);  // group 0
    client.request_page(5);  // group 1
    EXPECT_TRUE(client.run(0));
    EXPECT_EQ(client.summary().requests.completed, 2u);
  }
  runner.join();

  const ToleranceEstimator* estimator = server.pull_estimator();
  ASSERT_NE(estimator, nullptr);
  EXPECT_GE(estimator->sample_count(0), 1u);
  EXPECT_GE(estimator->sample_count(1), 1u);
  EXPECT_GE(estimator->estimate(0, 0.1, 0), 1u)
      << "pull tolerances are clamped to >= 1 slot";
}

TEST(PullPlane, DisabledByDefaultHasNoEstimator) {
  AirServerConfig config;
  config.slot_us = 500;
  config.max_slots = 10;
  ServerHarness harness(paper_workload(), config);
  EXPECT_EQ(harness.server().pull_estimator(), nullptr);
  EXPECT_EQ(harness.server().pull_airings(), 0u);
}

}  // namespace
