// Tests for the client cache (LRU / PIX) and the caching-client session.
#include <gtest/gtest.h>

#include <stdexcept>

#include "client/cache.hpp"
#include "client/cached_client.hpp"
#include "core/pamad.hpp"
#include "core/susc.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

// -------------------------------------------------------------------- cache

TEST(Cache, PolicyNamesRoundTrip) {
  EXPECT_EQ(parse_cache_policy("lru"), CachePolicy::kLru);
  EXPECT_EQ(parse_cache_policy("pix"), CachePolicy::kPix);
  EXPECT_EQ(cache_policy_name(CachePolicy::kPix), "pix");
  EXPECT_THROW(parse_cache_policy("fifo"), std::invalid_argument);
}

TEST(Cache, LruEvictsLeastRecent) {
  ClientCache cache(2, CachePolicy::kLru);
  cache.insert(1);
  cache.insert(2);
  EXPECT_TRUE(cache.lookup(1));  // 1 is now most recent
  cache.insert(3);               // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(Cache, LookupTracksHitsAndMisses) {
  ClientCache cache(2, CachePolicy::kLru);
  EXPECT_FALSE(cache.lookup(7));
  cache.insert(7);
  EXPECT_TRUE(cache.lookup(7));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(Cache, ReinsertIsNoEviction) {
  ClientCache cache(1, CachePolicy::kLru);
  cache.insert(5);
  cache.insert(5);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(Cache, PixEvictsCheapToRefetch) {
  // Page 0: popular but aired constantly (pix low). Page 1: moderately
  // popular, aired once a cycle (pix high). Page 2 arrives; 0 must go.
  const std::vector<double> prob = {0.5, 0.3, 0.2};
  const std::vector<double> freq = {64.0, 1.0, 2.0};
  ClientCache cache(2, CachePolicy::kPix, prob, freq);
  cache.insert(0);
  cache.insert(1);
  cache.insert(2);
  EXPECT_FALSE(cache.contains(0));  // 0.5/64 is the lowest score
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(Cache, PixCanBounceTheNewcomer) {
  // The inserted page itself has the worst score: it should be the victim.
  const std::vector<double> prob = {0.4, 0.4, 0.01};
  const std::vector<double> freq = {1.0, 1.0, 50.0};
  ClientCache cache(2, CachePolicy::kPix, prob, freq);
  cache.insert(0);
  cache.insert(1);
  cache.insert(2);
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
}

TEST(Cache, RejectsBadConstruction) {
  EXPECT_THROW(ClientCache(0, CachePolicy::kLru), std::invalid_argument);
  EXPECT_THROW(ClientCache(2, CachePolicy::kPix), std::invalid_argument);
  EXPECT_THROW(ClientCache(2, CachePolicy::kPix, {1.0}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(Cache, PixRejectsUncoveredPage) {
  ClientCache cache(2, CachePolicy::kPix, {1.0, 1.0}, {1.0, 1.0});
  EXPECT_THROW(cache.insert(5), std::invalid_argument);
}

// ----------------------------------------------------------- cached client

TEST(CachedClient, HitsReduceEffectiveWait) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 4, 200, 4, 2);
  const PamadSchedule s = schedule_pamad(w, 3);
  CachedClientConfig config;
  config.requests = 8000;
  const CachedClientResult r =
      simulate_cached_client(s.program, w, config);
  EXPECT_GT(r.hit_rate, 0.1);
  EXPECT_LT(r.avg_wait, r.avg_uncached_wait);
}

TEST(CachedClient, BiggerCacheHigherHitRate) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 4, 200, 4, 2);
  const PamadSchedule s = schedule_pamad(w, 3);
  CachedClientConfig small, large;
  small.requests = large.requests = 8000;
  small.cache_capacity = 10;
  large.cache_capacity = 100;
  EXPECT_LT(simulate_cached_client(s.program, w, small).hit_rate,
            simulate_cached_client(s.program, w, large).hit_rate);
}

TEST(CachedClient, PixBeatsLruOnEffectiveWait) {
  // The Broadcast Disks headline: under skewed access on a frequency-skewed
  // broadcast, cost-aware caching beats recency on *wait*, not necessarily
  // on raw hit rate.
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 5, 400, 4, 2);
  const PamadSchedule s = schedule_pamad(w, 4);
  CachedClientConfig pix, lru;
  pix.requests = lru.requests = 20000;
  pix.cache_capacity = lru.cache_capacity = 40;
  pix.policy = CachePolicy::kPix;
  lru.policy = CachePolicy::kLru;
  const CachedClientResult rp = simulate_cached_client(s.program, w, pix);
  const CachedClientResult rl = simulate_cached_client(s.program, w, lru);
  EXPECT_LT(rp.avg_wait, rl.avg_wait);
}

TEST(CachedClient, UniformAccessCachesLittle) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 4, 400, 4, 2);
  const BroadcastProgram p = schedule_susc(w);
  CachedClientConfig config;
  config.requests = 5000;
  config.cache_capacity = 10;
  config.popularity = Popularity::kUniform;
  const CachedClientResult r = simulate_cached_client(p, w, config);
  EXPECT_LT(r.hit_rate, 0.08);  // ~10/400 chance of a repeat
}

TEST(CachedClient, DeterministicInSeed) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 4, 100, 4, 2);
  const PamadSchedule s = schedule_pamad(w, 2);
  CachedClientConfig config;
  config.requests = 3000;
  const CachedClientResult a = simulate_cached_client(s.program, w, config);
  const CachedClientResult b = simulate_cached_client(s.program, w, config);
  EXPECT_DOUBLE_EQ(a.avg_wait, b.avg_wait);
  EXPECT_DOUBLE_EQ(a.hit_rate, b.hit_rate);
}

TEST(CachedClient, RejectsBadConfig) {
  const Workload w = make_workload({2}, {2});
  BroadcastProgram p(1, 2);
  p.place(0, 0, 0);
  p.place(0, 1, 1);
  CachedClientConfig config;
  config.requests = 0;
  EXPECT_THROW(simulate_cached_client(p, w, config), std::invalid_argument);
  config.requests = 10;
  config.think_time = -1.0;
  EXPECT_THROW(simulate_cached_client(p, w, config), std::invalid_argument);
}

}  // namespace
}  // namespace tcsa
