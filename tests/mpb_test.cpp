// Tests for the m-PB baseline and the round-robin floor.
#include <gtest/gtest.h>

#include <vector>

#include "core/channel_bound.hpp"
#include "core/mpb.hpp"
#include "core/pamad.hpp"
#include "core/round_robin.hpp"
#include "model/validate.hpp"
#include "sim/broadcast_sim.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

TEST(Mpb, FrequenciesAreThOverTi) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  EXPECT_EQ(mpb_frequencies(w), (std::vector<SlotCount>{4, 2, 1}));
  const Workload paper = make_paper_workload(GroupSizeShape::kUniform);
  EXPECT_EQ(mpb_frequencies(paper),
            (std::vector<SlotCount>{128, 64, 32, 16, 8, 4, 2, 1}));
}

TEST(Mpb, ValidAtSufficientChannels) {
  // With enough channels m-PB's cycle fits in t_h and meets every deadline.
  const Workload w = make_workload({2, 4}, {2, 3});
  const MpbSchedule s = schedule_mpb(w, min_channels(w));
  EXPECT_LE(s.t_major, w.max_expected_time());
  EXPECT_DOUBLE_EQ(s.predicted_delay, 0.0);
  SimConfig config;
  config.requests.count = 5000;
  EXPECT_NEAR(simulate_requests(s.program, w, config).avg_delay, 0.0, 0.2);
}

TEST(Mpb, CycleStretchesBelowTheBound) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform);
  const MpbSchedule at5 = schedule_mpb(w, 5);
  EXPECT_GT(at5.t_major, w.max_expected_time());
  const MpbSchedule at20 = schedule_mpb(w, 20);
  EXPECT_GT(at5.t_major, at20.t_major);
}

TEST(Mpb, EveryPageGetsItsCopies) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const MpbSchedule s = schedule_mpb(w, 2);
  EXPECT_EQ(s.program.occupied(), 4 * 3 + 2 * 5 + 1 * 3);
}

TEST(Mpb, PamadNeverWorseAnalytically) {
  // The core Section 5 finding at model level, across the paper's shapes
  // and the whole channel range.
  for (const GroupSizeShape shape : paper_shapes()) {
    const Workload w = make_paper_workload(shape, 6, 400, 4, 2);
    for (SlotCount channels = 1; channels <= min_channels(w); ++channels) {
      const double pamad = pamad_frequencies(w, channels).predicted_delay;
      const double mpb = schedule_mpb(w, channels).predicted_delay;
      // Tiny slack: in the near-zero regime right below the bound, ceil()
      // artefacts can favour m-PB by hundredths of a slot.
      EXPECT_LE(pamad, mpb * 1.05 + 0.01)
          << shape_name(shape) << " channels=" << channels;
    }
  }
}

TEST(Mpb, PamadClearlyBetterMidRange) {
  // Not just "never worse": at mid-range channel counts the gap is large
  // (the paper's plots show an order of magnitude).
  const Workload w = make_paper_workload(GroupSizeShape::kUniform);
  const SlotCount mid = min_channels(w) / 4;
  const double pamad = pamad_frequencies(w, mid).predicted_delay;
  const double mpb = schedule_mpb(w, mid).predicted_delay;
  EXPECT_LT(pamad * 4.0, mpb);
}

TEST(RoundRobin, FlatFrequencies) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  EXPECT_EQ(round_robin_frequencies(w), (std::vector<SlotCount>{1, 1, 1}));
}

TEST(RoundRobin, CycleIsCeilNOverChannels) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});  // n = 11
  EXPECT_EQ(schedule_round_robin(w, 3).t_major, 4);
  EXPECT_EQ(schedule_round_robin(w, 1).t_major, 11);
}

TEST(RoundRobin, EveryPageExactlyOnce) {
  const Workload w = make_workload({2, 4}, {5, 7});
  const RoundRobinSchedule s = schedule_round_robin(w, 3);
  EXPECT_EQ(s.program.occupied(), 12);
}

TEST(RoundRobin, PamadBeatsFlatWhenDeadlinesDiffer) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 6, 300, 4, 2);
  for (const SlotCount channels : {2, 5, 10}) {
    const double pamad = pamad_frequencies(w, channels).predicted_delay;
    const double flat = schedule_round_robin(w, channels).predicted_delay;
    EXPECT_LE(pamad, flat + 1e-9) << "channels=" << channels;
  }
}

}  // namespace
}  // namespace tcsa
