// Tests for channel-outage failure injection and the parallel sweep driver.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/channel_bound.hpp"
#include "core/pamad.hpp"
#include "core/susc.hpp"
#include "model/appearance_index.hpp"
#include "sim/outage.hpp"
#include "sim/sweep.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

// ------------------------------------------------------------------- outage

TEST(Outage, ClearsExactlyOneChannel) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram p = schedule_susc(w);
  const BroadcastProgram degraded = with_channel_outage(p, 1);
  for (SlotCount s = 0; s < degraded.cycle_length(); ++s)
    EXPECT_TRUE(degraded.empty_at(1, s));
  for (SlotCount ch = 0; ch < p.channels(); ++ch) {
    if (ch == 1) continue;
    for (SlotCount s = 0; s < p.cycle_length(); ++s)
      EXPECT_EQ(degraded.at(ch, s), p.at(ch, s));
  }
  EXPECT_THROW(with_channel_outage(p, 99), std::invalid_argument);
}

TEST(Outage, SuscSilencesWholePages) {
  // SUSC pages live on exactly one channel: killing any non-empty channel
  // silences every page homed there.
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram p = schedule_susc(w);
  const OutageImpact impact = evaluate_outage(p, w, 0, 5000, 3);
  EXPECT_GT(impact.silenced_pages, 0);
  EXPECT_GT(impact.unreachable_rate, 0.0);
}

TEST(Outage, PamadSpreadsRiskAcrossChannels) {
  // Algorithm-4 placement scatters a page's copies over channels, so the
  // worst single-transmitter loss silences far fewer pages than under
  // SUSC, whose Theorem-3.3 structure homes each page on one channel.
  // (Summed over ALL channels the counts can tie on small regular
  // workloads — placement becomes channel-periodic — so the robustness
  // claim is about the worst case, as in bench_ext_outage.)
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 6, 300, 4, 2);
  const SlotCount channels = min_channels(w);
  const BroadcastProgram susc = schedule_susc(w, channels);
  const PamadSchedule pamad = schedule_pamad(w, channels);

  SlotCount worst_susc = 0;
  SlotCount worst_pamad = 0;
  for (SlotCount ch = 0; ch < channels; ++ch) {
    worst_susc = std::max(worst_susc,
                          evaluate_outage(susc, w, ch, 500, 7).silenced_pages);
    worst_pamad = std::max(
        worst_pamad,
        evaluate_outage(pamad.program, w, ch, 500, 7).silenced_pages);
  }
  EXPECT_LT(worst_pamad, worst_susc);
}

TEST(Outage, DelayNeverImprovesAfterOutage) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 5, 200, 4, 2);
  const PamadSchedule s = schedule_pamad(w, 4);
  for (SlotCount ch = 0; ch < 4; ++ch) {
    const OutageImpact impact = evaluate_outage(s.program, w, ch, 4000, 11);
    EXPECT_GE(impact.avg_delay_after, impact.avg_delay_before - 1e-9)
        << "channel " << ch;
  }
}

TEST(Outage, DegradedPagesCounted) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 5, 200, 4, 2);
  const PamadSchedule s = schedule_pamad(w, 4);
  const OutageImpact impact = evaluate_outage(s.program, w, 0, 2000, 5);
  // Losing a quarter of the slots must widen at least some gaps.
  EXPECT_GT(impact.degraded_pages + impact.silenced_pages, 0);
}

TEST(Outage, RejectsBadCount) {
  const Workload w = make_workload({2}, {1});
  BroadcastProgram p(1, 2);
  p.place(0, 0, 0);
  EXPECT_THROW(evaluate_outage(p, w, 0, 0, 1), std::invalid_argument);
}

// ---------------------------------------------------------- parallel sweep

TEST(ParallelSweep, BitIdenticalToSerial) {
  const Workload w = make_paper_workload(GroupSizeShape::kNormal, 5, 150, 4, 2);
  SweepConfig config;
  config.methods = {Method::kPamad, Method::kMpb};
  config.sim.requests.count = 1000;
  const auto serial = run_sweep(w, config);
  for (const unsigned threads : {2u, 4u, 0u}) {
    const auto parallel = run_sweep_parallel(w, config, threads);
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].channels, serial[i].channels);
      EXPECT_EQ(parallel[i].method, serial[i].method);
      EXPECT_DOUBLE_EQ(parallel[i].avg_delay, serial[i].avg_delay) << i;
      EXPECT_DOUBLE_EQ(parallel[i].predicted_delay,
                       serial[i].predicted_delay);
    }
  }
}

TEST(ParallelSweep, SingleThreadFallsBackToSerial) {
  const Workload w = make_workload({2, 4}, {4, 6});
  SweepConfig config;
  config.methods = {Method::kPamad};
  config.sim.requests.count = 200;
  const auto a = run_sweep(w, config);
  const auto b = run_sweep_parallel(w, config, 1);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a[i].avg_delay, b[i].avg_delay);
}

TEST(ParallelSweep, RejectsEmptyConfigToo) {
  const Workload w = make_workload({2}, {1});
  SweepConfig config;
  config.methods = {};
  EXPECT_THROW(run_sweep_parallel(w, config, 2), std::invalid_argument);
}

}  // namespace
}  // namespace tcsa
