// multiloop_test.cpp — invariants of the sharded (loops > 1) air server:
// session conservation across loop shards under churn, per-loop slow-client
// eviction, announce exactly-once per session regardless of owning loop,
// broadcast validity at four loops, and an in-process loadgen smoke run.
#include <sys/socket.h>

#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/api.hpp"
#include "model/validate.hpp"
#include "model/workload.hpp"
#include "net/framing.hpp"
#include "server/air_server.hpp"
#include "server/loadgen.hpp"
#include "server/tune_client.hpp"
#include "util/wire.hpp"

using namespace tcsa;

namespace {

Workload paper_workload() { return make_workload({2, 4, 8}, {3, 5, 3}); }
Workload grown_workload() { return make_workload({2, 4, 8}, {3, 5, 4}); }

class ServerHarness {
 public:
  ServerHarness(Workload workload, AirServerConfig config)
      : server_(std::move(workload), config),
        thread_([this] { server_.run(); }) {}
  ~ServerHarness() {
    server_.stop();
    if (thread_.joinable()) thread_.join();
  }
  AirServer& server() { return server_; }
  TuneClient::Options client_options(std::uint64_t mask) const {
    TuneClient::Options options;
    options.port = server_.port();
    options.channel_mask = mask;
    return options;
  }

 private:
  AirServer server_;
  std::thread thread_;
};

std::size_t live_sessions(const AirServer& server) {
  const std::vector<std::size_t> per_loop = server.sessions_per_loop();
  return std::accumulate(per_loop.begin(), per_loop.end(), std::size_t{0});
}

/// Polls until the shard-summed session count settles at `expected`
/// (accepts and closes propagate through loop threads asynchronously).
void wait_for_sessions(const AirServer& server, std::size_t expected) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (live_sessions(server) != expected &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(live_sessions(server), expected);
}

// Sessions are conserved across the shards: however the kernel spreads
// accepts, the per-loop counts always sum to the number of open
// connections — through a full open/close/reopen churn cycle.
TEST(MultiLoop, SessionCountsAcrossShardsSumToLiveConnectionsUnderChurn) {
  AirServerConfig config;
  config.slot_us = 1000;
  config.max_slots = 0;
  config.loops = 4;
  ServerHarness harness(paper_workload(), config);
  ASSERT_EQ(harness.server().loops(), 4u);
  ASSERT_EQ(harness.server().sessions_per_loop().size(), 4u);

  std::vector<net::Fd> conns;
  for (int i = 0; i < 32; ++i)
    conns.push_back(net::connect_tcp("127.0.0.1", harness.server().port()));
  wait_for_sessions(harness.server(), 32);

  conns.resize(16);  // close half; shards notice via EOF
  wait_for_sessions(harness.server(), 16);

  for (int i = 0; i < 8; ++i)  // reopen some
    conns.push_back(net::connect_tcp("127.0.0.1", harness.server().port()));
  wait_for_sessions(harness.server(), 24);

  conns.clear();
  wait_for_sessions(harness.server(), 0);
}

// The eviction boundary is enforced by the shard that owns the slow
// session, wherever the kernel placed it — and healthy sessions on the
// other shards keep their deadlines.
TEST(MultiLoop, OwningShardEvictsItsSlowClient) {
  AirServerConfig config;
  config.slot_us = 1000;
  config.max_slots = 0;
  config.loops = 4;
  config.session_send_buffer = 4096;
  config.max_session_buffer = 2048;
  ServerHarness harness(paper_workload(), config);

  net::Fd lazy = net::connect_tcp("127.0.0.1", harness.server().port());
  const int small = 4096;
  ASSERT_EQ(::setsockopt(lazy.get(), SOL_SOCKET, SO_RCVBUF, &small,
                         sizeof(small)),
            0);
  std::string tune_payload;
  wire_put_u64(tune_payload, net::kAllChannels);
  std::string tune_frame;
  net::append_frame(tune_frame, net::FrameType::kTune, tune_payload);
  ASSERT_EQ(::send(lazy.get(), tune_frame.data(), tune_frame.size(),
                   MSG_NOSIGNAL),
            static_cast<ssize_t>(tune_frame.size()));

  TuneClient healthy(harness.client_options(net::kAllChannels));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (harness.server().sessions_evicted() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    healthy.run(20);
  }
  EXPECT_EQ(harness.server().sessions_evicted(), 1u);
  EXPECT_EQ(healthy.summary().deadline_misses, 0u);
}

// A hot swap's announce crosses from loop 0 to every shard as one token;
// each session must hear about the new generation exactly once, whichever
// loop owns it.
TEST(MultiLoop, EverySessionSeesOneAnnouncePerSwap) {
  AirServerConfig config;
  config.slot_us = 400;
  config.max_slots = 2000;
  config.loops = 4;
  ServerHarness harness(paper_workload(), config);

  constexpr int kClients = 8;
  std::vector<std::unique_ptr<TuneClient>> clients;
  for (int i = 0; i < kClients; ++i)
    clients.push_back(std::make_unique<TuneClient>(
        harness.client_options(net::kAllChannels)));
  std::vector<std::thread> runners;
  for (const auto& client : clients)
    runners.emplace_back([&client] { client->run(0); });

  TuneClient swapper(harness.client_options(0));
  const SwapReply reply = swapper.request_swap(grown_workload());
  ASSERT_TRUE(reply.accepted) << reply.error;
  EXPECT_EQ(reply.generation, 2u);

  for (std::thread& runner : runners) runner.join();
  for (const auto& client : clients) {
    const TuneSummary summary = client->summary();
    EXPECT_EQ(summary.swaps_observed, 1u)
        << "announce must reach each session exactly once";
    EXPECT_EQ(summary.generation, 2u);
    EXPECT_EQ(summary.deadline_misses, 0u);
  }
}

// The wire contract does not soften under sharding: a full-mask client of a
// 4-loop server reconstructs a cycle that the model checker accepts.
TEST(MultiLoop, FourLoopBroadcastReconstructsToAValidProgram) {
  AirServerConfig config;
  config.slot_us = 400;
  config.max_slots = 600;
  config.loops = 4;
  ServerHarness harness(paper_workload(), config);

  TuneClient::Options options = harness.client_options(net::kAllChannels);
  options.record_pages = true;
  TuneClient recorder(options);
  recorder.run(0);

  const std::vector<ReceivedPage>& pages = recorder.pages();
  ASSERT_FALSE(pages.empty());
  std::uint64_t first = pages.front().slot;
  for (const ReceivedPage& page : pages) first = std::min(first, page.slot);
  BroadcastProgram program(4, 8);
  for (const ReceivedPage& page : pages) {
    if (page.slot < first || page.slot >= first + 8) continue;
    program.place(static_cast<SlotCount>(page.channel),
                  static_cast<SlotCount>(page.slot - first), page.page);
  }
  const ValidityReport report = validate_program(program, paper_workload());
  EXPECT_TRUE(report.valid)
      << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_EQ(recorder.summary().deadline_misses, 0u);
}

// The epoch-stamped frame cache works across loop shards: after the first
// cycle seeds it, steady-state cycles serve page frames by patching the
// cached buffer's slot word instead of re-encoding, and the wire output
// stays correct (the recorder reconstructs a valid program elsewhere in
// this suite from the same path).
TEST(MultiLoop, FrameCacheRevivesSteadyStateCyclesAtFourLoops) {
  AirServerConfig config;
  config.slot_us = 400;
  config.max_slots = 600;
  config.loops = 4;
  ServerHarness harness(paper_workload(), config);

  TuneClient::Options options = harness.client_options(net::kAllChannels);
  TuneClient recorder(options);
  recorder.run(0);
  EXPECT_EQ(recorder.summary().deadline_misses, 0u);

  // 600 slots over a cycle of 8 is 75 cycles of the same occupied cells.
  // The cache holds one frame per (channel, column) cell; everything past
  // warm-up should be a patch hit. The bound is generous (25%) because a
  // cell re-encodes whenever the worker-epoch floor has not yet passed its
  // previous airing.
  const std::uint64_t encoded = harness.server().frames_encoded();
  const std::uint64_t hits = harness.server().frame_cache_hits();
  EXPECT_GT(hits, 0u) << "cache never revived a frame at loops=4";
  EXPECT_GE(hits + encoded, 1500u) << "server did not air the expected span";
  EXPECT_LE(encoded, (hits + encoded) / 4)
      << "steady-state cycles must patch, not re-encode";
}

// A hot swap invalidates the cache wholesale: no frame aired at or past the
// activation slot carries the old generation, none before it carries the
// new one, and the per-generation hit counter restarts from zero.
TEST(MultiLoop, HotSwapInvalidatesTheFrameCacheWithoutStaleFrames) {
  AirServerConfig config;
  config.slot_us = 400;
  config.max_slots = 2000;
  config.loops = 4;
  ServerHarness harness(paper_workload(), config);

  TuneClient::Options options = harness.client_options(net::kAllChannels);
  options.record_pages = true;
  TuneClient recorder(options);
  std::thread runner([&recorder] { recorder.run(0); });

  // Let the generation-1 cache warm (a few full cycles) so the swap has
  // revived frames to invalidate.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (harness.server().frame_cache_hits() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_GT(harness.server().frame_cache_hits(), 0u);

  TuneClient swapper(harness.client_options(0));
  const SwapReply reply = swapper.request_swap(grown_workload());
  ASSERT_TRUE(reply.accepted) << reply.error;
  ASSERT_EQ(reply.generation, 2u);
  runner.join();

  // Stale-frame check: the generation stamp inside every received frame
  // flips exactly at the activation boundary. A cached generation-1 frame
  // leaking past the swap would fail here.
  ASSERT_FALSE(recorder.pages().empty());
  for (const ReceivedPage& page : recorder.pages()) {
    if (page.slot >= reply.activation_slot)
      EXPECT_EQ(page.generation, 2u)
          << "stale generation-1 frame aired at slot " << page.slot;
    else
      EXPECT_EQ(page.generation, 1u)
          << "generation-2 frame aired before activation at slot "
          << page.slot;
  }

  // The per-generation hit counter reset at activation: it counts only
  // generation-2 revivals, strictly fewer than the all-time total (which
  // still includes the warm generation-1 cycles we waited for).
  const std::uint64_t total_hits = harness.server().frame_cache_hits();
  const std::uint64_t gen_hits = harness.server().frame_cache_generation_hits();
  EXPECT_GT(gen_hits, 0u) << "generation 2 never revived a frame";
  EXPECT_LT(gen_hits, total_hits)
      << "counter did not reset at the swap boundary";

  // Byte-level correctness of the revived generation-2 frames: a steady
  // state cycle reconstructs to a program the model checker accepts for
  // the new workload.
  const SlotCount cycle = recorder.cycle_length();
  const std::uint64_t first = reply.activation_slot + cycle;  // warm cycle
  BroadcastProgram program(recorder.channels(), cycle);
  for (const ReceivedPage& page : recorder.pages()) {
    if (page.slot < first || page.slot >= first + cycle) continue;
    program.place(static_cast<SlotCount>(page.channel),
                  static_cast<SlotCount>(page.slot - first), page.page);
  }
  const ValidityReport report = validate_program(program, grown_workload());
  EXPECT_TRUE(report.valid)
      << (report.violations.empty() ? "" : report.violations.front());
}

// In-process loadgen smoke: every requested session connects, receives
// pages, and survives to teardown against a 4-loop server.
TEST(MultiLoop, LoadgenDrivesAndMeasuresAShardedServer) {
  AirServerConfig config;
  config.slot_us = 2000;
  config.max_slots = 0;
  config.loops = 4;
  ServerHarness harness(paper_workload(), config);

  LoadGenConfig load;
  load.port = harness.server().port();
  load.sessions = 200;
  load.threads = 2;
  load.duration_ms = 500;
  const LoadGenReport report = run_loadgen(load);
  EXPECT_EQ(report.sessions_connected, 200u);
  EXPECT_EQ(report.connect_failures, 0u);
  EXPECT_EQ(report.early_closes, 0u);
  EXPECT_GT(report.pages, 0u);
  EXPECT_GT(report.samples, 0u);
  EXPECT_GE(report.jitter_p99_us, report.jitter_p50_us);
  EXPECT_GE(report.jitter_max_us, report.jitter_p999_us);

  // The report is a metrics snapshot: counters carry the session counts.
  const obs::MetricsSnapshot snap = report.to_snapshot();
  EXPECT_EQ(snap.counter_value("tcsa_loadgen_sessions_total"), 200u);
  EXPECT_EQ(snap.counter_value("tcsa_loadgen_early_closes_total"), 0u);
}

}  // namespace
