// Tests for the average-delay model (Section 4.1–4.3), including the golden
// values the paper computes by hand in its Figure-2 walkthrough and the
// agreement between the analytic model and the access simulator.
#include <gtest/gtest.h>

#include <vector>

#include "core/delay_model.hpp"
#include "core/placement.hpp"
#include "sim/broadcast_sim.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

// ------------------------------------------------------ even_spacing_delay

TEST(EvenSpacingDelay, ZeroWhenDeadlineMet) {
  EXPECT_DOUBLE_EQ(even_spacing_delay(4.0, 4), 0.0);
  EXPECT_DOUBLE_EQ(even_spacing_delay(3.0, 4), 0.0);
}

TEST(EvenSpacingDelay, QuadraticOverSpacing) {
  // (g - t)^2 / (2 g): g = 6, t = 2 -> 16 / 12.
  EXPECT_DOUBLE_EQ(even_spacing_delay(6.0, 2), 16.0 / 12.0);
  // g = 8, t = 4 -> 16 / 16 = 1.
  EXPECT_DOUBLE_EQ(even_spacing_delay(8.0, 4), 1.0);
}

TEST(EvenSpacingDelay, MonotoneInSpacing) {
  double last = 0.0;
  for (double g = 4.0; g < 50.0; g += 1.0) {
    const double d = even_spacing_delay(g, 4);
    EXPECT_GE(d, last);
    last = d;
  }
}

TEST(EvenSpacingDelay, RejectsNonPositiveSpacing) {
  EXPECT_THROW(even_spacing_delay(0.0, 2), std::invalid_argument);
}

// --------------------------------------------------------- cycle arithmetic

TEST(CycleArithmetic, TotalSlotsAndMajorCycle) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const std::vector<SlotCount> S = {4, 2, 1};
  EXPECT_EQ(total_slots(w, S), 4 * 3 + 2 * 5 + 1 * 3);  // 25
  // Paper Section 4.4: ceil(25 / 3) = 9.
  EXPECT_EQ(major_cycle(w, S, 3), 9);
  EXPECT_EQ(major_cycle(w, S, 25), 1);
  EXPECT_EQ(major_cycle(w, S, 5), 5);
}

TEST(CycleArithmetic, RejectsZeroFrequencies) {
  const Workload w = make_workload({2, 4}, {1, 1});
  const std::vector<SlotCount> S = {1, 0};
  EXPECT_THROW(total_slots(w, S), std::invalid_argument);
}

TEST(CycleArithmetic, RejectsShortFrequencyVector) {
  const Workload w = make_workload({2, 4}, {1, 1});
  const std::vector<SlotCount> S = {1};
  EXPECT_THROW(total_slots(w, S), std::invalid_argument);
}

// ----------------------------------------- paper's worked example (golden)

// Figure 2(b), Step 2: three channels, G1 = 3 pages t=2, G2 = 5 pages t=4.
TEST(PaperStageDelay, WorkedExampleStep2) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  // r1 = 1: S = (1, 1, -): D'_2 = 0.12 (3/8 * (8/3 - 2) * (3 - 2)/2 = 0.125).
  {
    const std::vector<SlotCount> S = {1, 1, 1};
    EXPECT_NEAR(paper_stage_delay(w, S, 3, 1), 0.125, 1e-9);
  }
  // r1 = 2: S = (2, 1, -): D'_2 = 0.
  {
    const std::vector<SlotCount> S = {2, 1, 1};
    EXPECT_DOUBLE_EQ(paper_stage_delay(w, S, 3, 1), 0.0);
  }
}

// Figure 2(b), Step 3: r1 = 2 fixed, r2 swept.
TEST(PaperStageDelay, WorkedExampleStep3) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  // r2 = 1: S = (2, 1, 1): paper reports D'_3 = 0.15.
  {
    const std::vector<SlotCount> S = {2, 1, 1};
    EXPECT_NEAR(paper_stage_delay(w, S, 3, 2), 0.1547, 5e-4);
  }
  // r2 = 2: S = (4, 2, 1): paper reports D'_3 = 0.04.
  {
    const std::vector<SlotCount> S = {4, 2, 1};
    EXPECT_NEAR(paper_stage_delay(w, S, 3, 2), 0.042, 2e-3);
  }
}

TEST(PaperStageDelay, PrefixScopeIgnoresLaterGroups) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const std::vector<SlotCount> S_small = {1, 1, 1};
  const std::vector<SlotCount> S_large = {1, 1, 999};
  EXPECT_DOUBLE_EQ(paper_stage_delay(w, S_small, 3, 1),
                   paper_stage_delay(w, S_large, 3, 1));
}

TEST(PaperStageDelay, ZeroUnderSufficientBandwidth) {
  // SUSC frequencies at the minimum channel count meet every deadline.
  const Workload w = make_workload({2, 4}, {2, 3});
  const std::vector<SlotCount> S = {2, 1};  // t_h/t_i
  EXPECT_DOUBLE_EQ(paper_stage_delay(w, S, 2, 1), 0.0);
}

// ------------------------------------------------- analytic per-request AvgD

TEST(AnalyticDelay, ZeroWhenEveryDeadlineMet) {
  const Workload w = make_workload({2, 4}, {2, 3});
  const std::vector<SlotCount> S = {2, 1};
  EXPECT_DOUBLE_EQ(analytic_average_delay(w, S, 2), 0.0);
}

TEST(AnalyticDelay, HandComputedSingleGroup) {
  // 6 pages, t = 2, S = 1, one channel: cycle 6, spacing 6, delay
  // (6-2)^2 / (2*6) = 16/12.
  const Workload w = make_workload({2}, {6});
  const std::vector<SlotCount> S = {1};
  EXPECT_DOUBLE_EQ(analytic_average_delay(w, S, 1), 16.0 / 12.0);
}

TEST(AnalyticDelay, ProportionalToPaperObjective) {
  // Over full-group scope the two objectives differ by the constant factor
  // n / N_real — exactly so in the continuous limit; the ceil() on t_major
  // perturbs small instances, so the check runs on a large workload where
  // discretisation is negligible.
  const Workload w = make_workload({2, 4, 8}, {300, 500, 300});
  const GroupId h = w.group_count();
  for (const std::vector<SlotCount>& S :
       {std::vector<SlotCount>{1, 1, 1}, std::vector<SlotCount>{2, 1, 1},
        std::vector<SlotCount>{4, 2, 1}, std::vector<SlotCount>{6, 2, 1}}) {
    for (const SlotCount channels : {1, 2, 3}) {
      const double paper = paper_stage_delay(w, S, channels, h - 1);
      const double exact = analytic_average_delay(w, S, channels);
      const double ratio = static_cast<double>(w.total_pages()) /
                           static_cast<double>(channels);
      ASSERT_GT(paper, 0.0);  // far below the bound: every group is late
      EXPECT_NEAR(exact * ratio / paper, 1.0, 0.02)
          << "S=" << S[0] << "," << S[1] << "," << S[2]
          << " channels=" << channels;
    }
  }
}

TEST(AnalyticDelay, BothObjectivesAgreeOnZero) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const std::vector<SlotCount> S = {4, 2, 1};
  const SlotCount channels = 4;  // the Theorem 3.1 minimum
  EXPECT_DOUBLE_EQ(paper_stage_delay(w, S, channels, 2), 0.0);
  EXPECT_DOUBLE_EQ(analytic_average_delay(w, S, channels), 0.0);
}

TEST(AnalyticDelay, WeightedUniformMatchesUnweighted) {
  const Workload w = make_workload({2, 4}, {3, 5});
  const std::vector<SlotCount> S = {1, 1};
  const std::vector<double> weights(8, 1.0);
  EXPECT_DOUBLE_EQ(analytic_average_delay_weighted(w, S, 1, weights),
                   analytic_average_delay(w, S, 1));
}

TEST(AnalyticDelay, WeightedSkewsTowardHotGroups) {
  const Workload w = make_workload({2, 4}, {4, 4});
  const std::vector<SlotCount> S = {1, 1};
  // All weight on the tight-deadline group -> larger average delay than all
  // weight on the loose group.
  std::vector<double> hot_tight = {1, 1, 1, 1, 0, 0, 0, 0};
  std::vector<double> hot_loose = {0, 0, 0, 0, 1, 1, 1, 1};
  EXPECT_GT(analytic_average_delay_weighted(w, S, 1, hot_tight),
            analytic_average_delay_weighted(w, S, 1, hot_loose));
}

TEST(AnalyticDelay, WeightedRejectsBadWeights) {
  const Workload w = make_workload({2}, {2});
  const std::vector<SlotCount> S = {1};
  EXPECT_THROW(
      analytic_average_delay_weighted(w, S, 1, std::vector<double>{1.0}),
      std::invalid_argument);
  EXPECT_THROW(analytic_average_delay_weighted(w, S, 1,
                                               std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
}

// --------------------------------------- model vs simulation (ground truth)

// The analytic model predicts the simulator's AvgD once placement actually
// spreads copies evenly; this is the linchpin connecting Section 4.1's math
// to the reported metric.
class ModelVsSimulation
    : public ::testing::TestWithParam<std::tuple<GroupSizeShape, int>> {};

TEST_P(ModelVsSimulation, AnalyticTracksSimulated) {
  const auto [shape, channels] = GetParam();
  const Workload w = make_paper_workload(shape, 5, 200, 2, 2);
  // Modest frequencies exercising real lateness.
  const std::vector<SlotCount> S = {8, 4, 2, 1, 1};
  const PlacementResult placed = place_even_spread(w, S, channels);
  SimConfig config;
  config.requests.count = 30000;
  config.seed = 1234;
  const SimResult sim = simulate_requests(placed.program, w, config);
  const double predicted = analytic_average_delay(w, S, channels);
  // Placement granularity and sampling noise both blur the match; 15%
  // relative (plus a small absolute floor) is ample to catch real bugs.
  EXPECT_NEAR(sim.avg_delay, predicted,
              std::max(0.6, predicted * 0.15))
      << "shape=" << shape_name(shape) << " channels=" << channels;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelVsSimulation,
    ::testing::Combine(::testing::Values(GroupSizeShape::kUniform,
                                         GroupSizeShape::kNormal,
                                         GroupSizeShape::kLSkewed,
                                         GroupSizeShape::kSSkewed),
                       ::testing::Values(2, 4, 8)),
    [](const auto& info) {
      return shape_name(std::get<0>(info.param)) + "_ch" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tcsa
