// Tests for src/workload: Figure-3 distributions, the Section-2 deadline
// rearrangement, and request generation.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "workload/distributions.hpp"
#include "workload/rearrange.hpp"
#include "workload/requests.hpp"

namespace tcsa {
namespace {

// ------------------------------------------------------------ distributions

TEST(Distributions, ParseRoundTrip) {
  for (GroupSizeShape s : {GroupSizeShape::kUniform, GroupSizeShape::kNormal,
                           GroupSizeShape::kLSkewed, GroupSizeShape::kSSkewed,
                           GroupSizeShape::kZipf, GroupSizeShape::kBinomial}) {
    EXPECT_EQ(parse_shape(shape_name(s)), s);
  }
  EXPECT_THROW(parse_shape("nope"), std::invalid_argument);
}

TEST(Distributions, PaperShapesAreTheFigureFive4) {
  const auto shapes = paper_shapes();
  ASSERT_EQ(shapes.size(), 4u);
  EXPECT_EQ(shapes[0], GroupSizeShape::kNormal);
  EXPECT_EQ(shapes[1], GroupSizeShape::kLSkewed);
  EXPECT_EQ(shapes[2], GroupSizeShape::kSSkewed);
  EXPECT_EQ(shapes[3], GroupSizeShape::kUniform);
}

class AllShapes : public ::testing::TestWithParam<GroupSizeShape> {};

TEST_P(AllShapes, SumsToNWithNoEmptyGroup) {
  for (const GroupId h : {1, 2, 3, 8, 16}) {
    for (const SlotCount n : {static_cast<SlotCount>(h), SlotCount{100},
                              SlotCount{1000}, SlotCount{1003}}) {
      const auto sizes = group_sizes(GetParam(), h, n);
      ASSERT_EQ(static_cast<GroupId>(sizes.size()), h);
      EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), SlotCount{0}), n);
      for (const SlotCount s : sizes) EXPECT_GE(s, 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AllShapes,
    ::testing::Values(GroupSizeShape::kUniform, GroupSizeShape::kNormal,
                      GroupSizeShape::kLSkewed, GroupSizeShape::kSSkewed,
                      GroupSizeShape::kZipf, GroupSizeShape::kBinomial),
    [](const auto& info) { return shape_name(info.param); });

TEST(Distributions, UniformIsFlat) {
  const auto sizes = group_sizes(GroupSizeShape::kUniform, 8, 1000);
  for (const SlotCount s : sizes) EXPECT_EQ(s, 125);
}

TEST(Distributions, NormalPeaksInTheMiddle) {
  const auto sizes = group_sizes(GroupSizeShape::kNormal, 8, 1000);
  const SlotCount edge = std::max(sizes.front(), sizes.back());
  const SlotCount mid = std::max(sizes[3], sizes[4]);
  EXPECT_GT(mid, edge);
  // Symmetric-ish: mirrored groups close in size.
  for (int g = 0; g < 4; ++g)
    EXPECT_NEAR(static_cast<double>(sizes[static_cast<std::size_t>(g)]),
                static_cast<double>(sizes[static_cast<std::size_t>(7 - g)]),
                2.0);
}

TEST(Distributions, LSkewedFrontLoaded) {
  const auto sizes = group_sizes(GroupSizeShape::kLSkewed, 8, 1000);
  for (std::size_t g = 1; g < sizes.size(); ++g)
    EXPECT_LE(sizes[g], sizes[g - 1]);
  EXPECT_GT(sizes.front(), sizes.back() * 10);
}

TEST(Distributions, SSkewedBackLoaded) {
  const auto sizes = group_sizes(GroupSizeShape::kSSkewed, 8, 1000);
  for (std::size_t g = 1; g < sizes.size(); ++g)
    EXPECT_GE(sizes[g], sizes[g - 1]);
  EXPECT_GT(sizes.back(), sizes.front() * 10);
}

TEST(Distributions, SAndLAreMirrors) {
  const auto l = group_sizes(GroupSizeShape::kLSkewed, 8, 1000);
  const auto s = group_sizes(GroupSizeShape::kSSkewed, 8, 1000);
  for (std::size_t g = 0; g < 8; ++g) EXPECT_EQ(l[g], s[7 - g]);
}

TEST(Distributions, RejectsBadArgs) {
  EXPECT_THROW(group_sizes(GroupSizeShape::kUniform, 0, 10),
               std::invalid_argument);
  EXPECT_THROW(group_sizes(GroupSizeShape::kUniform, 5, 4),
               std::invalid_argument);
}

TEST(Distributions, PaperWorkloadMatchesFigure4) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform);
  EXPECT_EQ(w.group_count(), 8);
  EXPECT_EQ(w.total_pages(), 1000);
  const SlotCount expected_times[] = {4, 8, 16, 32, 64, 128, 256, 512};
  for (GroupId g = 0; g < 8; ++g)
    EXPECT_EQ(w.expected_time(g), expected_times[g]);
}

TEST(Distributions, PaperWorkloadCustomLadder) {
  const Workload w =
      make_paper_workload(GroupSizeShape::kUniform, 3, 30, 2, 3);
  EXPECT_EQ(w.expected_time(0), 2);
  EXPECT_EQ(w.expected_time(1), 6);
  EXPECT_EQ(w.expected_time(2), 18);
}

TEST(Distributions, PaperWorkloadRejectsBadLadder) {
  EXPECT_THROW(make_paper_workload(GroupSizeShape::kUniform, 8, 1000, 0, 2),
               std::invalid_argument);
  EXPECT_THROW(make_paper_workload(GroupSizeShape::kUniform, 8, 1000, 4, 1),
               std::invalid_argument);
}

// ---------------------------------------------------------------- rearrange

TEST(Rearrange, PaperSection2Example) {
  // Times {2,3,4,6,9} -> assigned {2,2,4,4,8}, groups {2:2, 4:2, 8:1}.
  const auto result = rearrange_expected_times({2, 3, 4, 6, 9}, 2);
  EXPECT_EQ(result.assigned_time,
            (std::vector<SlotCount>{2, 2, 4, 4, 8}));
  const Workload& w = result.workload;
  ASSERT_EQ(w.group_count(), 3);
  EXPECT_EQ(w.expected_time(0), 2);
  EXPECT_EQ(w.expected_time(1), 4);
  EXPECT_EQ(w.expected_time(2), 8);
  EXPECT_EQ(w.pages_in_group(0), 2);
  EXPECT_EQ(w.pages_in_group(1), 2);
  EXPECT_EQ(w.pages_in_group(2), 1);
}

TEST(Rearrange, NeverRoundsUp) {
  const auto result =
      rearrange_expected_times({5, 7, 11, 13, 29, 100, 3}, 2);
  for (std::size_t i = 0; i < result.assigned_time.size(); ++i) {
    EXPECT_LE(result.assigned_time[i],
              (std::vector<SlotCount>{5, 7, 11, 13, 29, 100, 3})[i]);
  }
}

TEST(Rearrange, AssignedTimesAreOnLadder) {
  const auto result = rearrange_expected_times({4, 9, 17, 33, 64}, 2);
  for (const SlotCount t : result.assigned_time) {
    // Every assigned time is 4 * 2^k.
    SlotCount v = t;
    while (v > 4) {
      EXPECT_EQ(v % 2, 0);
      v /= 2;
    }
    EXPECT_EQ(v, 4);
  }
}

TEST(Rearrange, PageMappingIsConsistent) {
  const std::vector<SlotCount> times = {2, 3, 4, 6, 9};
  const auto result = rearrange_expected_times(times, 2);
  for (std::size_t i = 0; i < times.size(); ++i) {
    const PageId page = result.page_of_input[i];
    EXPECT_EQ(result.workload.expected_time_of(page), result.assigned_time[i]);
  }
}

TEST(Rearrange, TighteningRatioReflectsLoss) {
  // All times already on the ladder: no loss.
  const auto exact = rearrange_expected_times({2, 4, 8}, 2);
  EXPECT_DOUBLE_EQ(exact.mean_tightening_ratio, 1.0);
  // 3 -> 2 is a 2/3 ratio.
  const auto lossy = rearrange_expected_times({2, 3}, 2);
  EXPECT_NEAR(lossy.mean_tightening_ratio, (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
}

TEST(Rearrange, SingleTimeYieldsSingleGroup) {
  const auto result = rearrange_expected_times({7, 7, 7}, 2);
  EXPECT_EQ(result.workload.group_count(), 1);
  EXPECT_EQ(result.workload.expected_time(0), 7);
  EXPECT_EQ(result.workload.pages_in_group(0), 3);
}

TEST(Rearrange, RejectsBadInput) {
  EXPECT_THROW(rearrange_expected_times({}, 2), std::invalid_argument);
  EXPECT_THROW(rearrange_expected_times({0, 2}, 2), std::invalid_argument);
  EXPECT_THROW(rearrange_expected_times({2, 4}, 1), std::invalid_argument);
}

TEST(Rearrange, BestRatioPrefersExactLadder) {
  // {2,6,18} fits c = 3 exactly; c = 2 would cost (2/2 + 4/6 + 16/18)/3.
  EXPECT_EQ(best_ladder_ratio({2, 6, 18}, 8), 3);
  // Already a power-of-two ladder.
  EXPECT_EQ(best_ladder_ratio({4, 8, 16, 32}, 8), 2);
}

TEST(Rearrange, BestRatioTieKeepsSmallest) {
  // With a single distinct time every ratio scores 1.0; pick 2.
  EXPECT_EQ(best_ladder_ratio({5, 5, 5}, 8), 2);
}

// ----------------------------------------------------------------- requests

TEST(Requests, CountAndWindowRespected) {
  const Workload w = make_workload({2, 4}, {3, 5});
  Rng rng(1);
  RequestConfig config;
  config.count = 500;
  const auto requests = generate_requests(w, 100.0, config, rng);
  ASSERT_EQ(requests.size(), 500u);
  for (const Request& r : requests) {
    EXPECT_GE(r.arrival, 0.0);
    EXPECT_LT(r.arrival, 100.0);
    EXPECT_LT(r.page, w.total_pages());
  }
}

TEST(Requests, DeterministicInSeed) {
  const Workload w = make_workload({2, 4}, {3, 5});
  RequestConfig config;
  config.count = 100;
  Rng rng1(9), rng2(9);
  const auto a = generate_requests(w, 50.0, config, rng1);
  const auto b = generate_requests(w, 50.0, config, rng2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].page, b[i].page);
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
  }
}

TEST(Requests, UniformPopularityCoversAllPages) {
  const Workload w = make_workload({2, 4}, {4, 4});
  Rng rng(3);
  RequestConfig config;
  config.count = 4000;
  const auto requests = generate_requests(w, 10.0, config, rng);
  std::vector<int> hits(8, 0);
  for (const Request& r : requests) ++hits[r.page];
  for (const int h : hits) EXPECT_GT(h, 4000 / 8 / 2);
}

TEST(Requests, ZipfSkewsTowardLowIds) {
  const Workload w = make_workload({2}, {100});
  Rng rng(5);
  RequestConfig config;
  config.count = 20000;
  config.popularity = Popularity::kZipf;
  config.zipf_theta = 1.0;
  const auto requests = generate_requests(w, 10.0, config, rng);
  int low = 0, high = 0;
  for (const Request& r : requests) (r.page < 10 ? low : high)++;
  EXPECT_GT(low, high);  // 10% of pages draw over half the accesses
}

TEST(Requests, PoissonArrivalsIncreaseAndMatchRate) {
  const Workload w = make_workload({2}, {5});
  Rng rng(7);
  RequestConfig config;
  config.count = 20000;
  config.arrivals = ArrivalProcess::kPoisson;
  config.poisson_rate = 2.0;
  const auto requests = generate_requests(w, 1.0, config, rng);
  for (std::size_t i = 1; i < requests.size(); ++i)
    EXPECT_GE(requests[i].arrival, requests[i - 1].arrival);
  const double horizon = requests.back().arrival;
  EXPECT_NEAR(static_cast<double>(requests.size()) / horizon, 2.0, 0.1);
}

TEST(Requests, AccessWeightsUniformVsZipf) {
  const Workload w = make_workload({2}, {10});
  const auto uniform = access_weights(w, Popularity::kUniform, 0.8);
  EXPECT_EQ(uniform.size(), 10u);
  for (const double v : uniform) EXPECT_DOUBLE_EQ(v, 1.0);
  const auto zipf = access_weights(w, Popularity::kZipf, 0.8);
  EXPECT_GT(zipf.front(), zipf.back());
}

TEST(Requests, RejectsBadWindow) {
  const Workload w = make_workload({2}, {1});
  Rng rng(1);
  RequestConfig config;
  EXPECT_THROW(generate_requests(w, 0.0, config, rng), std::invalid_argument);
}

}  // namespace
}  // namespace tcsa
