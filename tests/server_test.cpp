// server_test.cpp — loopback acceptance for the live broadcast server:
// deadline validity before/during/after a hot swap, channel switching,
// slow-client eviction, the seam planner, and the tcsa_server_* metrics.
#include <sys/socket.h>

#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/api.hpp"
#include "model/validate.hpp"
#include "model/workload.hpp"
#include "net/framing.hpp"
#include "obs/metrics.hpp"
#include "server/air_server.hpp"
#include "server/tune_client.hpp"
#include "util/wire.hpp"

using namespace tcsa;

namespace {

Workload paper_workload() { return make_workload({2, 4, 8}, {3, 5, 3}); }
Workload grown_workload() { return make_workload({2, 4, 8}, {3, 5, 4}); }

/// Runs an AirServer on a background thread; stops and joins on scope exit.
class ServerHarness {
 public:
  ServerHarness(Workload workload, AirServerConfig config)
      : server_(std::move(workload), config),
        thread_([this] { server_.run(); }) {}
  ~ServerHarness() {
    server_.stop();
    if (thread_.joinable()) thread_.join();
  }
  AirServer& server() { return server_; }
  TuneClient::Options client_options(std::uint64_t mask) const {
    TuneClient::Options options;
    options.port = server_.port();
    options.channel_mask = mask;
    return options;
  }

 private:
  AirServer server_;
  std::thread thread_;
};

/// Rebuilds the broadcast program a full-mask client observed over one
/// cycle-length window of `generation` frames, starting at the first slot
/// of that generation it saw. The result is a rotation of the aired
/// program; validity is what the client experienced from its tune-in.
BroadcastProgram reconstruct_cycle(const std::vector<ReceivedPage>& pages,
                                   std::uint32_t generation,
                                   SlotCount channels, SlotCount cycle) {
  std::uint64_t first = 0;
  bool found = false;
  for (const ReceivedPage& page : pages) {
    if (page.generation != generation) continue;
    if (!found || page.slot < first) first = page.slot;
    found = true;
  }
  EXPECT_TRUE(found) << "no frames from generation " << generation;
  BroadcastProgram program(channels, cycle);
  for (const ReceivedPage& page : pages) {
    if (page.generation != generation) continue;
    if (page.slot < first || page.slot >= first + static_cast<std::uint64_t>(cycle))
      continue;
    program.place(static_cast<SlotCount>(page.channel),
                  static_cast<SlotCount>(page.slot - first), page.page);
  }
  return program;
}

// The tentpole acceptance: three concurrent sessions (two full-mask
// monitors, one channel switcher), a mid-run hot swap, and not one missed
// deadline anywhere — before, across, or after the swap seam.
TEST(AirServer, LoopbackDeadlinesHoldAcrossChannelSwitchAndHotSwap) {
  AirServerConfig config;
  config.slot_us = 400;
  config.max_slots = 1200;
  ServerHarness harness(paper_workload(), config);

  TuneClient::Options recorder_options =
      harness.client_options(net::kAllChannels);
  recorder_options.record_pages = true;
  TuneClient recorder(recorder_options);
  TuneClient monitor(harness.client_options(net::kAllChannels));
  TuneClient switcher(harness.client_options(1ull << 0));

  std::thread monitor_thread([&] { monitor.run(0); });
  std::thread switcher_thread([&] {
    switcher.run(80);
    switcher.retune(net::kAllChannels);
    switcher.run(0);
  });

  recorder.run(150);
  const SwapReply reply = recorder.request_swap(grown_workload());
  ASSERT_TRUE(reply.accepted) << reply.error;
  EXPECT_EQ(reply.generation, 2u);
  EXPECT_LE(reply.seam_lateness, 0)
      << "SUSC appending pages to the last group must reuse the common "
         "placement, so the seam is clean";
  // Activation lands exactly on a major-cycle boundary of generation 1.
  EXPECT_EQ(reply.activation_slot % 8, 0u);
  recorder.run(0);  // to EOF

  monitor_thread.join();
  switcher_thread.join();

  // Every observer: zero deadline misses, swap seen, receptions flowing.
  for (const TuneClient* client : {&recorder, &monitor}) {
    const TuneSummary summary = client->summary();
    EXPECT_EQ(summary.deadline_misses, 0u);
    EXPECT_EQ(summary.swaps_observed, 1u);
    EXPECT_EQ(summary.generation, 2u);
    ASSERT_EQ(summary.groups.size(), 3u);
    for (const TuneGroupStats& group : summary.groups) {
      EXPECT_GT(group.receptions, 0u);
      EXPECT_LE(group.max_gap, group.expected_time);
    }
  }
  const TuneSummary switched = switcher.summary();
  EXPECT_EQ(switched.deadline_misses, 0u);
  EXPECT_EQ(switched.retunes, 1u);
  EXPECT_GT(switched.frames, 0u);

  // The grown group has one more page and the client saw it air.
  EXPECT_EQ(recorder.workload().total_pages(), 12);

  // Validity of what was actually received, via the model checker: one
  // reconstructed cycle per generation, against that generation's workload.
  const BroadcastProgram before =
      reconstruct_cycle(recorder.pages(), 1, 4, 8);
  const ValidityReport before_report =
      validate_program(before, paper_workload());
  EXPECT_TRUE(before_report.valid) << (before_report.violations.empty()
                                           ? ""
                                           : before_report.violations.front());
  const BroadcastProgram after = reconstruct_cycle(recorder.pages(), 2, 4, 8);
  const ValidityReport after_report =
      validate_program(after, grown_workload());
  EXPECT_TRUE(after_report.valid) << (after_report.violations.empty()
                                          ? ""
                                          : after_report.violations.front());
}

TEST(AirServer, RejectsSwapToAnUnschedulableWorkloadAndStaysOnAir) {
  AirServerConfig config;
  config.slot_us = 300;
  config.max_slots = 4000;
  ServerHarness harness(paper_workload(), config);

  TuneClient client(harness.client_options(net::kAllChannels));
  // 40 pages with t=2 on the current 4 channels: far beyond the bandwidth
  // bound, and --channels is pinned so the server cannot widen.
  const SwapReply reply =
      client.request_swap(make_workload({2}, {40}), /*channels=*/4);
  EXPECT_FALSE(reply.accepted);
  EXPECT_FALSE(reply.error.empty());
  // The old program keeps airing, still meeting deadlines.
  client.run(60);
  const TuneSummary summary = client.summary();
  EXPECT_EQ(summary.generation, 1u);
  EXPECT_EQ(summary.swaps_observed, 0u);
  EXPECT_EQ(summary.deadline_misses, 0u);
}

TEST(AirServer, EvictsASlowClientInsteadOfStallingTheBroadcast) {
  AirServerConfig config;
  // Roomy slots: under TSAN an instrumented healthy client must still
  // drain on schedule, or it would (correctly) be evicted as slow too.
  config.slot_us = 1000;
  config.max_slots = 0;  // run until stopped
  config.session_send_buffer = 4096;
  config.max_session_buffer = 2048;
  ServerHarness harness(paper_workload(), config);

  // A raw socket that subscribes to everything and never reads: the kernel
  // buffers fill, the userspace pending buffer crosses the cap, eviction.
  net::Fd lazy = net::connect_tcp("127.0.0.1", harness.server().port());
  const int small = 4096;
  ASSERT_EQ(::setsockopt(lazy.get(), SOL_SOCKET, SO_RCVBUF, &small,
                         sizeof(small)),
            0);
  std::string tune_payload;
  wire_put_u64(tune_payload, net::kAllChannels);
  std::string tune_frame;
  net::append_frame(tune_frame, net::FrameType::kTune, tune_payload);
  ASSERT_EQ(::send(lazy.get(), tune_frame.data(), tune_frame.size(),
                   MSG_NOSIGNAL),
            static_cast<ssize_t>(tune_frame.size()));

  // Meanwhile a healthy client keeps receiving on schedule.
  TuneClient healthy(harness.client_options(net::kAllChannels));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (harness.server().sessions_evicted() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    healthy.run(20);
  }
  EXPECT_EQ(harness.server().sessions_evicted(), 1u);
  EXPECT_EQ(healthy.summary().deadline_misses, 0u);
}

TEST(PlanSwapSeam, IdenticalProgramsAreSeamFreeAtTheMatchingRotation) {
  const Workload w = paper_workload();
  const BroadcastProgram program = make_schedule(Method::kSusc, w, 4).program;
  // Old program airing at rotation 3: the identity continuation (rotation 3
  // of the same program) keeps every promise exactly.
  const SwapPlan plan = plan_swap_seam(w, program, 3, w, program);
  EXPECT_LE(plan.seam_lateness, 0);
}

TEST(PlanSwapSeam, SuscGrowthKeepsCommonPlacementSeamClean) {
  const Workload w1 = paper_workload();
  const Workload w2 = grown_workload();
  const BroadcastProgram p1 = make_schedule(Method::kSusc, w1, 4).program;
  const BroadcastProgram p2 = make_schedule(Method::kSusc, w2, 4).program;
  const SwapPlan plan = plan_swap_seam(w1, p1, 0, w2, p2);
  EXPECT_EQ(plan.offset, 0);
  EXPECT_LE(plan.seam_lateness, 0);
}

TEST(PlanSwapSeam, ReportsPositiveLatenessWhenNoRotationPreservesPromises) {
  // The old program airs both pages every slot (two channels), so at the
  // boundary both are promised within 1 slot. The new single-channel
  // program alternates them: whichever rotation airs first, one page waits
  // 2 slots — one slot later than promised. The planner must report that
  // honestly rather than pretend a clean seam exists.
  const Workload w = make_workload({2}, {2});
  BroadcastProgram old_program(2, 2);
  old_program.place(0, 0, 0);
  old_program.place(0, 1, 0);
  old_program.place(1, 0, 1);
  old_program.place(1, 1, 1);
  BroadcastProgram new_program(1, 2);
  new_program.place(0, 0, 0);
  new_program.place(0, 1, 1);
  const SwapPlan plan = plan_swap_seam(w, old_program, 0, w, new_program);
  EXPECT_EQ(plan.seam_lateness, 1);
}

#if TCSA_OBS_COMPILED
TEST(AirServer, ExportsServerMetrics) {
  obs::set_enabled(true);
  const obs::MetricsSnapshot before = obs::snapshot();

  {
    AirServerConfig config;
    config.slot_us = 300;
    config.max_slots = 200;
    ServerHarness harness(paper_workload(), config);
    TuneClient client(harness.client_options(net::kAllChannels));
    client.run(50);
    const SwapReply reply = client.request_swap(grown_workload());
    ASSERT_TRUE(reply.accepted) << reply.error;
    client.run(0);
  }

  const obs::MetricsSnapshot delta = obs::snapshot().minus(before);
  obs::set_enabled(false);
  EXPECT_GE(delta.counter_value("tcsa_server_sessions_opened_total"), 1u);
  EXPECT_GE(delta.counter_value("tcsa_server_sessions_closed_total"), 1u);
  EXPECT_GE(delta.counter_value("tcsa_server_slots_aired_total"), 200u);
  EXPECT_GT(delta.counter_value("tcsa_server_frames_sent_total"), 0u);
  EXPECT_GT(delta.counter_value("tcsa_server_frames_encoded_total"), 0u);
  EXPECT_LE(delta.counter_value("tcsa_server_frames_encoded_total"),
            delta.counter_value("tcsa_server_frames_sent_total"));
  // Queue-time vs send-time accounting: everything sent was queued first,
  // and a frame's bytes retire (flush) only after the kernel accepted them.
  EXPECT_GT(delta.counter_value("tcsa_server_bytes_queued_total"), 0u);
  EXPECT_GT(delta.counter_value("tcsa_server_bytes_sent_total"), 0u);
  EXPECT_LE(delta.counter_value("tcsa_server_bytes_sent_total"),
            delta.counter_value("tcsa_server_bytes_queued_total"));
  EXPECT_LE(delta.counter_value("tcsa_server_bytes_flushed_total"),
            delta.counter_value("tcsa_server_bytes_sent_total"));
  EXPECT_GT(delta.counter_value("tcsa_server_writev_calls_total"), 0u);
  EXPECT_EQ(delta.counter_value("tcsa_server_swaps_total"), 1u);
  EXPECT_EQ(delta.counter_value("tcsa_server_tunes_total"), 1u);
  const obs::HistogramSnapshot* lag =
      delta.histogram("tcsa_server_slot_lag_us");
  ASSERT_NE(lag, nullptr);
  EXPECT_GE(lag->total(), 200u);
}

// Zero-copy fan-out acceptance: with several full-mask subscribers, frame
// encoding stays O(channels) — the per-cycle cache encodes each (channel,
// column) body once per generation and slot-patches it afterwards, while
// queued frames scale with the audience.
TEST(AirServer, FanOutSharesOneEncodePerFrameAcrossSessions) {
  obs::set_enabled(true);
  const obs::MetricsSnapshot before = obs::snapshot();

  {
    AirServerConfig config;
    config.slot_us = 300;
    config.max_slots = 400;
    ServerHarness harness(paper_workload(), config);
    TuneClient a(harness.client_options(net::kAllChannels));
    TuneClient b(harness.client_options(net::kAllChannels));
    TuneClient c(harness.client_options(net::kAllChannels));
    std::thread ta([&] { a.run(0); });
    std::thread tb([&] { b.run(0); });
    c.run(0);
    ta.join();
    tb.join();
    EXPECT_EQ(a.summary().deadline_misses, 0u);
    EXPECT_EQ(b.summary().deadline_misses, 0u);
    EXPECT_EQ(c.summary().deadline_misses, 0u);
  }

  const obs::MetricsSnapshot delta = obs::snapshot().minus(before);
  obs::set_enabled(false);
  const std::uint64_t encoded =
      delta.counter_value("tcsa_server_frames_encoded_total");
  const std::uint64_t sent =
      delta.counter_value("tcsa_server_frames_sent_total");
  ASSERT_GT(encoded, 0u);
  // Three subscribers share each encoded body; even with connect skew and
  // occasional cache misses the fan-out must dominate the encodes.
  EXPECT_GE(sent, 2 * encoded)
      << "per-session copies crept back into the egress path";
  // All three drained cleanly, so send-time accounting converged with
  // queue-time accounting: every queued byte was sent and fully retired.
  EXPECT_EQ(delta.counter_value("tcsa_server_bytes_sent_total"),
            delta.counter_value("tcsa_server_bytes_queued_total"));
  EXPECT_EQ(delta.counter_value("tcsa_server_bytes_flushed_total"),
            delta.counter_value("tcsa_server_bytes_sent_total"));
}
#endif

}  // namespace
