// Tests for src/model: Workload invariants, BroadcastProgram grid,
// AppearanceIndex queries, and the validity checker.
#include <gtest/gtest.h>

#include <stdexcept>

#include "model/appearance_index.hpp"
#include "model/program.hpp"
#include "model/validate.hpp"
#include "model/workload.hpp"

namespace tcsa {
namespace {

// ----------------------------------------------------------------- workload

TEST(Workload, PaperFig2Example) {
  // Figure 2(a): P = (3, 5, 3), t = (2, 4, 8).
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  EXPECT_EQ(w.group_count(), 3);
  EXPECT_EQ(w.total_pages(), 11);
  EXPECT_EQ(w.expected_time(0), 2);
  EXPECT_EQ(w.expected_time(2), 8);
  EXPECT_EQ(w.max_expected_time(), 8);
  EXPECT_EQ(w.pages_in_group(1), 5);
  EXPECT_EQ(w.first_page(0), 0u);
  EXPECT_EQ(w.first_page(1), 3u);
  EXPECT_EQ(w.first_page(2), 8u);
}

TEST(Workload, GroupOfPageAndExpectedTimeOf) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  EXPECT_EQ(w.group_of(0), 0);
  EXPECT_EQ(w.group_of(2), 0);
  EXPECT_EQ(w.group_of(3), 1);
  EXPECT_EQ(w.group_of(7), 1);
  EXPECT_EQ(w.group_of(8), 2);
  EXPECT_EQ(w.group_of(10), 2);
  EXPECT_EQ(w.expected_time_of(0), 2);
  EXPECT_EQ(w.expected_time_of(5), 4);
  EXPECT_EQ(w.expected_time_of(10), 8);
}

TEST(Workload, GroupOfRejectsOutOfRange) {
  const Workload w = make_workload({2}, {3});
  EXPECT_THROW(w.group_of(3), std::invalid_argument);
}

TEST(Workload, SingleGroup) {
  const Workload w = make_workload({5}, {7});
  EXPECT_EQ(w.group_count(), 1);
  EXPECT_EQ(w.max_expected_time(), 5);
  SlotCount c = 0;
  EXPECT_TRUE(w.uniform_ratio(c));
  EXPECT_EQ(c, 1);
}

TEST(Workload, UniformRatioDetection) {
  SlotCount c = 0;
  EXPECT_TRUE(make_workload({2, 4, 8}, {1, 1, 1}).uniform_ratio(c));
  EXPECT_EQ(c, 2);
  EXPECT_TRUE(make_workload({3, 9, 27}, {1, 1, 1}).uniform_ratio(c));
  EXPECT_EQ(c, 3);
  // Mixed ratios form a legal ladder but are not uniformly geometric.
  EXPECT_FALSE(make_workload({2, 4, 12}, {1, 1, 1}).uniform_ratio(c));
}

TEST(Workload, RejectsNonDividingTimes) {
  EXPECT_THROW(make_workload({2, 3}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(make_workload({4, 6}, {1, 1}), std::invalid_argument);
}

TEST(Workload, RejectsNonIncreasingTimes) {
  EXPECT_THROW(make_workload({4, 4}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(make_workload({8, 4}, {1, 1}), std::invalid_argument);
}

TEST(Workload, RejectsDegenerateGroups) {
  EXPECT_THROW(make_workload({}, {}), std::invalid_argument);
  EXPECT_THROW(make_workload({0}, {1}), std::invalid_argument);
  EXPECT_THROW(make_workload({2}, {0}), std::invalid_argument);
}

TEST(Workload, DescribeMentionsShape) {
  const std::string d = make_workload({2, 4}, {3, 5}).describe();
  EXPECT_NE(d.find("h=2"), std::string::npos);
  EXPECT_NE(d.find("n=8"), std::string::npos);
  EXPECT_NE(d.find("t=[2,4]"), std::string::npos);
  EXPECT_NE(d.find("P=[3,5]"), std::string::npos);
}

TEST(Workload, EqualityComparesGroups) {
  EXPECT_EQ(make_workload({2, 4}, {1, 2}), make_workload({2, 4}, {1, 2}));
  EXPECT_NE(make_workload({2, 4}, {1, 2}), make_workload({2, 4}, {2, 2}));
}

// ------------------------------------------------------------------ program

TEST(Program, StartsEmpty) {
  const BroadcastProgram p(3, 10);
  EXPECT_EQ(p.channels(), 3);
  EXPECT_EQ(p.cycle_length(), 10);
  EXPECT_EQ(p.occupied(), 0);
  EXPECT_EQ(p.capacity(), 30);
  for (SlotCount ch = 0; ch < 3; ++ch)
    for (SlotCount s = 0; s < 10; ++s) EXPECT_TRUE(p.empty_at(ch, s));
}

TEST(Program, PlaceAndReadBack) {
  BroadcastProgram p(2, 4);
  p.place(1, 3, 7);
  EXPECT_EQ(p.at(1, 3), 7u);
  EXPECT_FALSE(p.empty_at(1, 3));
  EXPECT_EQ(p.occupied(), 1);
}

TEST(Program, OverwriteIsALogicError) {
  BroadcastProgram p(1, 2);
  p.place(0, 0, 1);
  EXPECT_THROW(p.place(0, 0, 2), std::logic_error);
}

TEST(Program, ClearFreesSlot) {
  BroadcastProgram p(1, 2);
  p.place(0, 1, 5);
  p.clear(0, 1);
  EXPECT_TRUE(p.empty_at(0, 1));
  EXPECT_EQ(p.occupied(), 0);
  EXPECT_THROW(p.clear(0, 1), std::invalid_argument);
}

TEST(Program, BoundsChecked) {
  BroadcastProgram p(2, 3);
  EXPECT_THROW(p.at(2, 0), std::invalid_argument);
  EXPECT_THROW(p.at(0, 3), std::invalid_argument);
  EXPECT_THROW(p.at(-1, 0), std::invalid_argument);
  EXPECT_THROW(p.place(0, -1, 1), std::invalid_argument);
}

TEST(Program, CannotPlaceSentinel) {
  BroadcastProgram p(1, 1);
  EXPECT_THROW(p.place(0, 0, kNoPage), std::invalid_argument);
}

TEST(Program, ColumnLoad) {
  BroadcastProgram p(3, 2);
  p.place(0, 0, 1);
  p.place(2, 0, 2);
  EXPECT_EQ(p.column_load(0), 2);
  EXPECT_EQ(p.column_load(1), 0);
}

TEST(Program, RejectsDegenerateShape) {
  EXPECT_THROW(BroadcastProgram(0, 5), std::invalid_argument);
  EXPECT_THROW(BroadcastProgram(2, 0), std::invalid_argument);
}

TEST(Program, RenderShowsPagesAndHoles) {
  BroadcastProgram p(2, 3);
  p.place(0, 0, 12);
  const std::string out = p.render();
  EXPECT_NE(out.find("ch0"), std::string::npos);
  EXPECT_NE(out.find("ch1"), std::string::npos);
  EXPECT_NE(out.find("12"), std::string::npos);
  EXPECT_NE(out.find('.'), std::string::npos);
}

// --------------------------------------------------------- appearance index

TEST(AppearanceIndex, CompletionTimesAreSlotPlusOne) {
  BroadcastProgram p(1, 6);
  p.place(0, 0, 0);
  p.place(0, 3, 0);
  const AppearanceIndex idx(p, 1);
  const auto a = idx.appearances(0);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(a[1], 4);
}

TEST(AppearanceIndex, MultiChannelSameColumnBothCounted) {
  BroadcastProgram p(2, 4);
  p.place(0, 1, 0);
  p.place(1, 1, 0);
  const AppearanceIndex idx(p, 1);
  EXPECT_EQ(idx.count(0), 2);
  EXPECT_EQ(idx.appearances(0)[0], idx.appearances(0)[1]);
}

TEST(AppearanceIndex, MissingPageHasNoAppearances) {
  BroadcastProgram p(1, 3);
  p.place(0, 0, 0);
  const AppearanceIndex idx(p, 2);
  EXPECT_EQ(idx.count(1), 0);
  EXPECT_THROW(idx.wait_after(1, 0.0), std::invalid_argument);
  EXPECT_THROW(idx.max_gap(1), std::invalid_argument);
}

TEST(AppearanceIndex, WaitWithinCycle) {
  BroadcastProgram p(1, 8);
  p.place(0, 1, 0);  // completes at 2
  p.place(0, 5, 0);  // completes at 6
  const AppearanceIndex idx(p, 1);
  EXPECT_DOUBLE_EQ(idx.wait_after(0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(idx.wait_after(0, 1.5), 0.5);
  EXPECT_DOUBLE_EQ(idx.wait_after(0, 2.0), 4.0);  // strictly after 2
  EXPECT_DOUBLE_EQ(idx.wait_after(0, 5.99), 6.0 - 5.99);
}

TEST(AppearanceIndex, WaitWrapsAroundCycle) {
  BroadcastProgram p(1, 8);
  p.place(0, 1, 0);  // completes at 2
  const AppearanceIndex idx(p, 1);
  // After the only appearance, the next one is in the following cycle.
  EXPECT_DOUBLE_EQ(idx.wait_after(0, 3.0), 2.0 + 8.0 - 3.0);
  EXPECT_DOUBLE_EQ(idx.wait_after(0, 2.0), 8.0);  // exactly at completion
}

TEST(AppearanceIndex, WaitAcceptsTimesBeyondOneCycle) {
  BroadcastProgram p(1, 4);
  p.place(0, 2, 0);  // completes at 3
  const AppearanceIndex idx(p, 1);
  EXPECT_DOUBLE_EQ(idx.wait_after(0, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(idx.wait_after(0, 4.5), 2.5);   // second cycle
  EXPECT_DOUBLE_EQ(idx.wait_after(0, 40.5), 2.5);  // tenth cycle
}

TEST(AppearanceIndex, MaxGapSingleAppearanceIsCycle) {
  BroadcastProgram p(2, 10);
  p.place(1, 4, 0);
  const AppearanceIndex idx(p, 1);
  EXPECT_EQ(idx.max_gap(0), 10);
}

TEST(AppearanceIndex, MaxGapIncludesWrap) {
  BroadcastProgram p(1, 10);
  p.place(0, 0, 0);  // completes at 1
  p.place(0, 3, 0);  // completes at 4
  const AppearanceIndex idx(p, 1);
  // Gaps: 3 (1 -> 4) and 7 (4 -> 11 via wrap).
  EXPECT_EQ(idx.max_gap(0), 7);
}

TEST(AppearanceIndex, EvenSpacingGapEqualsSpacing) {
  BroadcastProgram p(1, 12);
  for (SlotCount s : {0, 4, 8}) p.place(0, s, 0);
  const AppearanceIndex idx(p, 1);
  EXPECT_EQ(idx.max_gap(0), 4);
}

TEST(AppearanceIndex, RejectsUnknownPageInProgram) {
  BroadcastProgram p(1, 2);
  p.place(0, 0, 5);
  EXPECT_THROW(AppearanceIndex(p, 3), std::invalid_argument);
}

// ----------------------------------------------------------------- validate

TEST(Validate, PerfectProgramIsValid) {
  // One page, t = 2, broadcast every other slot in a 4-slot cycle.
  const Workload w = make_workload({2}, {1});
  BroadcastProgram p(1, 4);
  p.place(0, 0, 0);
  p.place(0, 2, 0);
  const ValidityReport r = validate_program(p, w);
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_EQ(r.worst_wait, 2);
  EXPECT_LE(r.worst_lateness, 0);
}

TEST(Validate, MissingPageIsViolation) {
  const Workload w = make_workload({2}, {2});
  BroadcastProgram p(1, 2);
  p.place(0, 0, 0);
  p.place(0, 1, 0);  // page 1 missing
  const ValidityReport r = validate_program(p, w);
  EXPECT_FALSE(r.valid);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations[0].find("page 1"), std::string::npos);
}

TEST(Validate, LateFirstAppearanceIsViolation) {
  const Workload w = make_workload({2}, {1});
  BroadcastProgram p(1, 4);
  p.place(0, 2, 0);  // completes at 3 > t = 2, and wrap gap 4 > 2
  const ValidityReport r = validate_program(p, w);
  EXPECT_FALSE(r.valid);
  EXPECT_GE(r.violations.size(), 1u);
}

TEST(Validate, WideGapIsViolation) {
  const Workload w = make_workload({2}, {1});
  BroadcastProgram p(1, 6);
  p.place(0, 0, 0);  // completes at 1
  p.place(0, 1, 0);  // completes at 2 — then gap of 5 via wrap
  const ValidityReport r = validate_program(p, w);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.worst_wait, 5);
  EXPECT_EQ(r.worst_lateness, 3);
}

TEST(Validate, DuplicateColumnIsWarningNotViolation) {
  const Workload w = make_workload({2}, {1});
  BroadcastProgram p(2, 2);
  p.place(0, 0, 0);
  p.place(1, 0, 0);  // same column on another channel: wasteful
  p.place(0, 1, 0);
  const ValidityReport r = validate_program(p, w);
  EXPECT_TRUE(r.valid);
  EXPECT_FALSE(r.warnings.empty());
}

TEST(Validate, IsValidProgramConvenience) {
  const Workload w = make_workload({1}, {1});
  BroadcastProgram p(1, 1);
  p.place(0, 0, 0);
  EXPECT_TRUE(is_valid_program(p, w));
}

}  // namespace
}  // namespace tcsa
