// Tests for incremental SUSC maintenance under page churn.
#include <gtest/gtest.h>

#include "core/channel_bound.hpp"
#include "core/incremental.hpp"
#include "core/susc.hpp"
#include "model/appearance_index.hpp"
#include "model/validate.hpp"
#include "util/rng.hpp"

namespace tcsa {
namespace {

/// Validity restricted to the pages actually present in the program.
bool valid_for_live_pages(const BroadcastProgram& program,
                          const Workload& workload) {
  const AppearanceIndex index(program, workload.total_pages());
  for (PageId page = 0; page < workload.total_pages(); ++page) {
    if (index.count(page) == 0) continue;  // removed: fine
    if (index.appearances(page).front() > workload.expected_time_of(page))
      return false;
    if (index.max_gap(page) > workload.expected_time_of(page)) return false;
  }
  return true;
}

TEST(Incremental, StartsFromValidSusc) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const MaintainedSchedule m(w, min_channels(w));
  EXPECT_TRUE(is_valid_program(m.program(), w));
  EXPECT_EQ(m.live_pages(0), 3);
  EXPECT_EQ(m.live_pages(1), 5);
  EXPECT_EQ(m.live_pages(2), 3);
}

TEST(Incremental, RemoveClearsWholeProgression) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  MaintainedSchedule m(w, min_channels(w));
  ASSERT_TRUE(m.remove_page(0));
  const AppearanceIndex index(m.program(), w.total_pages());
  EXPECT_EQ(index.count(0), 0);
  EXPECT_EQ(m.live_pages(0), 2);
  EXPECT_TRUE(valid_for_live_pages(m.program(), w));
  // Second removal of the same page is a no-op.
  EXPECT_FALSE(m.remove_page(0));
  EXPECT_EQ(m.live_pages(0), 2);
}

TEST(Incremental, AddReusesFreedCapacity) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  MaintainedSchedule m(w, min_channels(w));
  ASSERT_TRUE(m.remove_page(1));
  EXPECT_TRUE(m.can_add(0));
  const auto channel = m.add_page(0, 1);
  ASSERT_TRUE(channel.has_value());
  EXPECT_EQ(m.live_pages(0), 3);
  EXPECT_TRUE(is_valid_program(m.program(), w));  // full catalogue again
}

TEST(Incremental, AddFailsWhenSaturated) {
  // Fully packed program (demand integral): no free progression anywhere.
  const Workload w = make_workload({2, 4}, {4, 8});  // demand exactly 4
  MaintainedSchedule m(w, min_channels(w));
  EXPECT_EQ(m.program().occupied(), m.program().capacity());
  EXPECT_FALSE(m.can_add(0));
  EXPECT_FALSE(m.add_page(0, 0).has_value());  // even reusing an id: full
}

TEST(Incremental, CrossGroupReuseRespectsProgressions) {
  // Remove a tight page (frees a t=2 progression: every other slot) and
  // add a loose one; the loose page must land on a fully free progression,
  // never interleave into half-freed slots of another page.
  const Workload w = make_workload({2, 4}, {2, 3});
  MaintainedSchedule m(w, min_channels(w));
  ASSERT_TRUE(m.remove_page(0));  // t = 2 page gone
  const auto channel = m.add_page(1, 2);  // a t = 4 page id
  if (channel.has_value()) {
    EXPECT_TRUE(valid_for_live_pages(m.program(), w));
  }
}

TEST(Incremental, RejectsMismatchedGroupOrUnknownPage) {
  const Workload w = make_workload({2, 4}, {2, 3});
  MaintainedSchedule m(w, min_channels(w));
  EXPECT_THROW(m.add_page(1, 0), std::invalid_argument);  // page 0 is group 0
  EXPECT_THROW(m.add_page(0, 99), std::invalid_argument);
  EXPECT_THROW(m.remove_page(99), std::invalid_argument);
  EXPECT_THROW(m.live_pages(5), std::invalid_argument);
}

TEST(Incremental, RejectsNonSuscShapedProgram) {
  const Workload w = make_workload({2, 4}, {2, 3});
  BroadcastProgram wrong_cycle(2, 7);  // not t_h
  EXPECT_THROW(MaintainedSchedule(w, std::move(wrong_cycle)),
               std::invalid_argument);
}

TEST(Incremental, ChurnStormKeepsLivePagesValid) {
  // Property: random remove/add churn never breaks validity for the pages
  // currently on air.
  const Workload w = make_workload({2, 4, 8, 16}, {4, 6, 10, 12});
  MaintainedSchedule m(w, min_channels(w));
  Rng rng(99);
  std::vector<bool> live(static_cast<std::size_t>(w.total_pages()), true);
  for (int step = 0; step < 300; ++step) {
    const auto page =
        static_cast<PageId>(rng.uniform_int(0, w.total_pages() - 1));
    if (live[page]) {
      EXPECT_TRUE(m.remove_page(page));
      live[page] = false;
    } else {
      const GroupId g = w.group_of(page);
      const auto channel = m.add_page(g, page);
      // Capacity freed by this page's own removal guarantees room unless
      // another group grabbed it; both outcomes are legal, but on success
      // the page must be live again.
      if (channel.has_value()) live[page] = true;
    }
    ASSERT_TRUE(valid_for_live_pages(m.program(), w)) << "step " << step;
  }
  // Re-add everything that fits; live counts must match the tracker.
  for (PageId page = 0; page < w.total_pages(); ++page) {
    if (!live[page]) {
      if (m.add_page(w.group_of(page), page).has_value()) live[page] = true;
    }
  }
  const AppearanceIndex index(m.program(), w.total_pages());
  for (PageId page = 0; page < w.total_pages(); ++page)
    EXPECT_EQ(index.count(page) > 0, live[page]) << "page " << page;
}

}  // namespace
}  // namespace tcsa
