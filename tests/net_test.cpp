// net_test.cpp — wire codec, frame (de)coder, slot clock, and event loop.
#include <sys/epoll.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/event_loop.hpp"
#include "net/framing.hpp"
#include "net/loop_group.hpp"
#include "net/slot_clock.hpp"
#include "net/socket.hpp"
#include "util/wire.hpp"

using namespace tcsa;

namespace {

// ------------------------------------------------------------ wire codec

TEST(Wire, RoundTripsEveryWidth) {
  std::string bytes;
  wire_put_u8(bytes, 0xab);
  wire_put_u16(bytes, 0x1234);
  wire_put_u32(bytes, 0xdeadbeef);
  wire_put_u64(bytes, 0x0123456789abcdefULL);
  wire_put_i64(bytes, -42);
  WireReader reader(bytes);
  EXPECT_EQ(reader.read_u8(), 0xab);
  EXPECT_EQ(reader.read_u16(), 0x1234);
  EXPECT_EQ(reader.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.read_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.read_i64(), -42);
  EXPECT_NO_THROW(reader.expect_done());
}

TEST(Wire, IsLittleEndianOnTheWire) {
  std::string bytes;
  wire_put_u32(bytes, 0x41534354);  // "TCSA"
  EXPECT_EQ(bytes, "TCSA");
}

TEST(Wire, TruncationAndTrailingJunkThrow) {
  std::string bytes;
  wire_put_u32(bytes, 7);
  {
    WireReader reader(bytes);
    EXPECT_THROW(reader.read_u64(), std::invalid_argument);
  }
  {
    WireReader reader(bytes);
    reader.read_u16();
    EXPECT_THROW(reader.expect_done(), std::invalid_argument);
  }
}

// ---------------------------------------------------------------- framing

TEST(Framing, RoundTripsFramesThroughArbitraryChunking) {
  std::string stream;
  net::append_frame(stream, net::FrameType::kTune, "01234567");
  net::append_frame(stream, net::FrameType::kPage, std::string(100, 'x'));
  net::append_frame(stream, net::FrameType::kHello, "");  // empty payload

  // Feed one byte at a time — frames must reassemble regardless of TCP
  // segmentation.
  net::FrameDecoder decoder;
  std::vector<std::pair<net::FrameType, std::string>> got;
  net::Frame frame;
  for (const char c : stream) {
    decoder.feed(std::string_view(&c, 1));
    while (decoder.next(frame))
      got.emplace_back(frame.type, std::string(frame.payload));
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].first, net::FrameType::kTune);
  EXPECT_EQ(got[0].second, "01234567");
  EXPECT_EQ(got[1].first, net::FrameType::kPage);
  EXPECT_EQ(got[1].second, std::string(100, 'x'));
  EXPECT_EQ(got[2].first, net::FrameType::kHello);
  EXPECT_TRUE(got[2].second.empty());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Framing, NeedsMoreBytesUntilTheFrameCompletes) {
  std::string stream;
  net::append_frame(stream, net::FrameType::kTune, "payload");
  net::FrameDecoder decoder;
  net::Frame frame;
  decoder.feed(std::string_view(stream).substr(0, stream.size() - 1));
  EXPECT_FALSE(decoder.next(frame));
  decoder.feed(std::string_view(stream).substr(stream.size() - 1));
  EXPECT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.payload, "payload");
}

TEST(Framing, RejectsCorruptHeaders) {
  const auto poisoned = [](auto mutate) {
    std::string stream;
    net::append_frame(stream, net::FrameType::kPage, "abc");
    mutate(stream);
    net::FrameDecoder decoder;
    decoder.feed(stream);
    net::Frame frame;
    EXPECT_THROW(decoder.next(frame), std::invalid_argument);
  };
  poisoned([](std::string& s) { s[0] = 'X'; });           // bad magic
  poisoned([](std::string& s) { s[4] = 99; });            // unknown version
  poisoned([](std::string& s) { s[5] = 0; });             // type below range
  poisoned([](std::string& s) { s[5] = 100; });           // type above range
  poisoned([](std::string& s) { s[6] = 1; });             // nonzero flags
  poisoned([](std::string& s) { s[11] = 0x7f; });         // length > cap
}

// -------------------------------------------------------------- slot clock

TEST(SlotClock, DeadlinesAreDriftFreeMultiples) {
  net::SlotClock clock(250);
  EXPECT_EQ(clock.slot_us(), 250u);
  EXPECT_EQ(clock.deadline_us(0), 0u);
  EXPECT_EQ(clock.deadline_us(7), 7u * 250u);
  // A slot far in the future is not yet due; its lag is zero.
  EXPECT_GT(clock.until_due_us(1u << 20), 0u);
  EXPECT_EQ(clock.lag_us(1u << 20), 0u);
  // Slot 0's deadline was the epoch: already due, lag grows.
  EXPECT_EQ(clock.until_due_us(0), 0u);
}

// -------------------------------------------------------------- event loop

TEST(EventLoop, PostFromAnotherThreadWakesPoll) {
  net::EventLoop loop;
  std::atomic<bool> ran{false};
  std::thread poster([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    loop.post([&] { ran.store(true); });
  });
  // Block with no timeout: only the post's wakeup can end this poll.
  while (!ran.load()) loop.poll(-1);
  poster.join();
  EXPECT_TRUE(ran.load());
}

TEST(EventLoop, TimerFiresAndDispatchesCallback) {
  net::EventLoop loop;
  net::TimerFd timer;
  int fired = 0;
  loop.add(timer.fd(), EPOLLIN, [&](std::uint32_t) {
    timer.acknowledge();
    ++fired;
  });
  timer.arm_after_us(1000);
  while (fired == 0) loop.poll(50'000);
  EXPECT_EQ(fired, 1);
  loop.remove(timer.fd());
  EXPECT_EQ(loop.watched(), 0u);
}

TEST(EventLoop, CallbackMaySafelyRemoveItself) {
  net::EventLoop loop;
  net::TimerFd timer;
  bool removed = false;
  loop.add(timer.fd(), EPOLLIN, [&](std::uint32_t) {
    timer.acknowledge();
    loop.remove(timer.fd());  // self-removal mid-dispatch
    removed = true;
  });
  timer.arm_after_us(0);
  while (!removed) loop.poll(50'000);
  EXPECT_EQ(loop.watched(), 0u);
}

// --------------------------------------------------------------- sockets

TEST(Socket, ListenerResolvesEphemeralPortAndAcceptsNothingWhenIdle) {
  net::Fd listener = net::listen_tcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.valid());
  EXPECT_GT(net::local_port(listener.get()), 0);
  // Non-blocking accept with no pending connection returns an invalid Fd.
  net::Fd conn = net::accept_connection(listener.get());
  EXPECT_FALSE(conn.valid());
}

TEST(Socket, ConnectRoundTrip) {
  net::Fd listener = net::listen_tcp("127.0.0.1", 0);
  const std::uint16_t port = net::local_port(listener.get());
  net::Fd client = net::connect_tcp("127.0.0.1", port);
  ASSERT_TRUE(client.valid());
  net::Fd server;
  for (int i = 0; i < 100 && !server.valid(); ++i)
    server = net::accept_connection(listener.get());
  ASSERT_TRUE(server.valid());
}

TEST(Socket, NonBlockingConnectCompletesAndReportsNoError) {
  net::Fd listener = net::listen_tcp("127.0.0.1", 0);
  const std::uint16_t port = net::local_port(listener.get());
  net::Fd client = net::connect_tcp_nonblocking("127.0.0.1", port);
  ASSERT_TRUE(client.valid());
  net::EventLoop loop;
  bool completed = false;
  loop.add(client.get(), EPOLLOUT, [&](std::uint32_t) {
    EXPECT_EQ(net::connect_error(client.get()), 0);
    completed = true;
  });
  while (!completed) loop.poll(100'000);
  loop.remove(client.get());
  net::Fd server;
  for (int i = 0; i < 100 && !server.valid(); ++i)
    server = net::accept_connection(listener.get());
  ASSERT_TRUE(server.valid());
}

// --------------------------------------------------- reuseport sharding

TEST(Socket, ReuseportClonesShareOneKernelPortAndSplitAccepts) {
  // The sharding recipe: shard 0 resolves an ephemeral port inside its own
  // reuseport group, clones join at the concrete port.
  net::Fd shard0 = net::listen_reuseport("127.0.0.1", 0);
  const std::uint16_t port = net::local_port(shard0.get());
  ASSERT_GT(port, 0);
  net::Fd shard1 = net::listen_reuseport("127.0.0.1", port);
  net::Fd shard2 = net::listen_reuseport("127.0.0.1", port);
  EXPECT_EQ(net::local_port(shard1.get()), port);
  EXPECT_EQ(net::local_port(shard2.get()), port);

  // Every dialed connection lands on exactly one listener of the group —
  // the kernel does the accept sharding, no userspace handoff.
  std::vector<net::Fd> clients;
  for (int i = 0; i < 24; ++i)
    clients.push_back(net::connect_tcp("127.0.0.1", port));
  const int listeners[] = {shard0.get(), shard1.get(), shard2.get()};
  std::size_t accepted = 0;
  std::vector<net::Fd> server_ends;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (accepted < clients.size() &&
         std::chrono::steady_clock::now() < deadline) {
    for (const int fd : listeners) {
      for (;;) {
        net::Fd conn = net::accept_connection(fd);
        if (!conn.valid()) break;
        server_ends.push_back(std::move(conn));
        ++accepted;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(accepted, clients.size());
}

TEST(Socket, NaivePortZeroReuseportClonesLandOnDifferentPorts) {
  // The trap the recipe above exists to avoid: binding each shard at port 0
  // gives every shard its *own* ephemeral port — no shared group, and
  // clients dialing shard 0's port would reach only shard 0.
  net::Fd a = net::listen_reuseport("127.0.0.1", 0);
  net::Fd b = net::listen_reuseport("127.0.0.1", 0);
  EXPECT_NE(net::local_port(a.get()), net::local_port(b.get()));
}

// -------------------------------------------------------------- loop group

TEST(LoopGroup, RunsOneWorkerPerExtraLoopAndJoinsClean) {
  net::LoopGroup group(4);
  EXPECT_EQ(group.size(), 4u);
  EXPECT_EQ(&group.primary(), &group.loop(0));
  std::atomic<int> ran{0};
  group.start_workers([&](std::size_t index) {
    EXPECT_GE(index, 1u);  // loop 0 stays with the caller
    std::atomic<bool> woken{false};
    group.loop(index).post([&] { woken.store(true); });
    while (!woken.load()) group.loop(index).poll(-1);
    ran.fetch_add(1);
  });
  group.join_workers();
  EXPECT_EQ(ran.load(), 3);
}

TEST(LoopGroup, JoinRethrowsTheFirstWorkerFailure) {
  net::LoopGroup group(3);
  group.start_workers(
      [](std::size_t) { throw std::runtime_error("worker boom"); });
  EXPECT_THROW(group.join_workers(), std::runtime_error);
}

// Multi-producer post storm: every function posted from every thread runs
// exactly once, and watched() stays safely readable from the producers.
// (The TSAN CI job runs this to certify the cross-thread contract.)
TEST(EventLoop, PostStormFromManyThreadsDeliversEveryFunction) {
  net::EventLoop loop;
  net::TimerFd timer;
  loop.add(timer.fd(), EPOLLIN, [&](std::uint32_t) { timer.acknowledge(); });
  constexpr int kThreads = 4;
  constexpr int kPosts = 2000;
  std::atomic<int> delivered{0};
  std::vector<std::thread> posters;
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&] {
      for (int i = 0; i < kPosts; ++i) {
        loop.post([&] { delivered.fetch_add(1, std::memory_order_relaxed); });
        // Cross-thread introspection under fire must never race the loop.
        EXPECT_LE(loop.watched(), 1u);
      }
    });
  }
  while (delivered.load() < kThreads * kPosts) loop.poll(-1);
  for (std::thread& t : posters) t.join();
  EXPECT_EQ(delivered.load(), kThreads * kPosts);
  loop.remove(timer.fd());
  EXPECT_EQ(loop.watched(), 0u);
}

}  // namespace
