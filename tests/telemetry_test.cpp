// telemetry_test.cpp — unit tests for the live telemetry plane: the
// SlotTimeline seqlock ring, the SloWatchdog percentile window, and the
// HttpAdmin GET responder (served from an EventLoop polled on a thread,
// scraped with the blocking http_get client — the same pairing AirServer
// and tcsactl use in production).

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "net/http_admin.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/watchdog.hpp"

namespace {

using namespace tcsa;

// ------------------------------------------------------------- timeline

obs::SlotRecord make_record(std::uint64_t slot) {
  obs::SlotRecord rec;
  rec.slot = slot;
  rec.scheduled_us = static_cast<std::int64_t>(slot * 100);
  rec.actual_us = static_cast<std::int64_t>(slot * 100 + slot % 7);
  rec.bytes_flushed = slot * 10;
  rec.sessions = 3;
  rec.evictions = slot / 2;
  rec.generation = 1;
  rec.aired_mask = (slot % 2 == 0) ? 0x5u : 0x2u;
  return rec;
}

TEST(SlotTimeline, SnapshotReturnsRecordsOldestFirst) {
  obs::SlotTimeline timeline(8);
  for (std::uint64_t s = 0; s < 5; ++s) timeline.record(make_record(s));
  EXPECT_EQ(timeline.capacity(), 8u);
  EXPECT_EQ(timeline.recorded(), 5u);

  const std::vector<obs::SlotRecord> slots = timeline.snapshot();
  ASSERT_EQ(slots.size(), 5u);
  for (std::uint64_t s = 0; s < 5; ++s) {
    EXPECT_EQ(slots[s].slot, s);
    EXPECT_EQ(slots[s].scheduled_us, static_cast<std::int64_t>(s * 100));
    EXPECT_EQ(slots[s].lag_us(), static_cast<std::int64_t>(s % 7));
    EXPECT_EQ(slots[s].bytes_flushed, s * 10);
    EXPECT_EQ(slots[s].aired_mask, (s % 2 == 0) ? 0x5u : 0x2u);
  }
}

TEST(SlotTimeline, RingKeepsOnlyTheMostRecentCapacityRecords) {
  obs::SlotTimeline timeline(4);
  for (std::uint64_t s = 0; s < 11; ++s) timeline.record(make_record(s));
  EXPECT_EQ(timeline.recorded(), 11u);

  const std::vector<obs::SlotRecord> slots = timeline.snapshot();
  ASSERT_EQ(slots.size(), 4u);
  // Slots 7..10 survive; 0..6 were overwritten.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(slots[i].slot, 7u + i);
}

TEST(SlotTimeline, SnapshotMaxLimitsToTheNewestRecords) {
  obs::SlotTimeline timeline(16);
  for (std::uint64_t s = 0; s < 10; ++s) timeline.record(make_record(s));

  const std::vector<obs::SlotRecord> slots = timeline.snapshot(3);
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(slots[0].slot, 7u);
  EXPECT_EQ(slots[2].slot, 9u);
}

TEST(SlotTimeline, ConcurrentReadersNeverSeeTornRecords) {
  // One writer hammers a tiny ring while readers snapshot continuously.
  // Torn cells would show internally inconsistent fields; the seqlock must
  // instead drop them, so every returned record satisfies the writer's
  // invariant actual == scheduled + (slot % 7).
  obs::SlotTimeline timeline(4);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> checked{0};

  std::thread writer([&] {
    std::uint64_t slot = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      timeline.record(make_record(slot++));
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const obs::SlotRecord& rec : timeline.snapshot()) {
          ASSERT_EQ(rec.actual_us,
                    rec.scheduled_us +
                        static_cast<std::int64_t>(rec.slot % 7));
          ASSERT_EQ(rec.bytes_flushed, rec.slot * 10);
          checked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_GT(checked.load(), 0u);
}

TEST(SlotTimeline, JsonDumpParsesBackWithLagPerSlot) {
  obs::SlotTimeline timeline(8);
  for (std::uint64_t s = 0; s < 3; ++s) timeline.record(make_record(s));

  const obs::JsonValue doc = obs::json_parse(timeline.to_json());
  EXPECT_EQ(doc.at("capacity").number, 8.0);
  EXPECT_EQ(doc.at("recorded").number, 3.0);
  const obs::JsonValue& slots = doc.at("slots").expect_array("slots");
  ASSERT_EQ(slots.array.size(), 3u);
  EXPECT_EQ(slots.array[2].at("slot").number, 2.0);
  EXPECT_EQ(slots.array[2].at("lag_us").number, 2.0);  // 2 % 7
  EXPECT_EQ(slots.array[2].at("bytes_flushed").number, 20.0);
}

TEST(SlotTimeline, JsonDumpHonoursMax) {
  obs::SlotTimeline timeline(8);
  for (std::uint64_t s = 0; s < 6; ++s) timeline.record(make_record(s));
  const obs::JsonValue doc = obs::json_parse(timeline.to_json(2));
  const obs::JsonValue& slots = doc.at("slots").expect_array("slots");
  ASSERT_EQ(slots.array.size(), 2u);
  EXPECT_EQ(slots.array[0].at("slot").number, 4.0);
}

// ------------------------------------------------------------- watchdog

TEST(SloWatchdog, ConstantLagCollapsesAllPercentiles) {
  obs::SloWatchdogConfig config;
  config.window = 16;
  obs::SloWatchdog dog(config);
  EXPECT_EQ(dog.p99_us(), 0.0);  // nothing published before a full window
  for (int i = 0; i < 16; ++i) dog.observe(250.0, i);
  EXPECT_EQ(dog.windows(), 1u);
  EXPECT_DOUBLE_EQ(dog.p50_us(), 250.0);
  EXPECT_DOUBLE_EQ(dog.p99_us(), 250.0);
  EXPECT_DOUBLE_EQ(dog.p999_us(), 250.0);
}

TEST(SloWatchdog, RampSeparatesTheTailFromTheMedian) {
  obs::SloWatchdogConfig config;
  config.window = 100;
  obs::SloWatchdog dog(config);
  for (int i = 1; i <= 100; ++i) dog.observe(static_cast<double>(i), i);
  EXPECT_EQ(dog.windows(), 1u);
  // Nearest-rank over 1..100: the median sits mid-ramp, the tail at the top.
  EXPECT_GE(dog.p50_us(), 45.0);
  EXPECT_LE(dog.p50_us(), 55.0);
  EXPECT_GE(dog.p99_us(), 99.0);
  EXPECT_GE(dog.p999_us(), dog.p99_us());
  EXPECT_GT(dog.p99_us(), dog.p50_us());
}

TEST(SloWatchdog, GaugesDecayTowardTheFreshWindow) {
  obs::SloWatchdogConfig config;
  config.window = 4;
  config.decay = 0.5;
  obs::SloWatchdog dog(config);
  // First window publishes undamped (there is no past to decay toward).
  for (int i = 0; i < 4; ++i) dog.observe(100.0, i);
  EXPECT_DOUBLE_EQ(dog.p50_us(), 100.0);
  // Second window blends 0.5 * fresh + 0.5 * old.
  for (int i = 0; i < 4; ++i) dog.observe(200.0, 10 + i);
  EXPECT_EQ(dog.windows(), 2u);
  EXPECT_DOUBLE_EQ(dog.p50_us(), 150.0);
}

TEST(SloWatchdog, BreachesCountAndWarningsAreRateLimited) {
  obs::SloWatchdogConfig config;
  config.window = 1024;  // keep the window open; breaches are per-sample
  config.breach_us = 500.0;
  config.warn_interval_us = 1'000'000;
  std::vector<std::string> warnings;
  config.on_warn = [&](const std::string& message) {
    warnings.push_back(message);
  };
  obs::SloWatchdog dog(config);

  dog.observe(100.0, 0);           // under the SLO: no breach
  dog.observe(900.0, 10);          // breach #1 — warns (first is free)
  dog.observe(901.0, 20);          // breach #2 — inside the warn interval
  dog.observe(902.0, 2'000'000);   // breach #3 — interval elapsed, warns
  EXPECT_EQ(dog.breaches(), 3u);
  ASSERT_EQ(warnings.size(), 2u);
  EXPECT_NE(warnings[0].find("900"), std::string::npos);
}

TEST(SloWatchdog, ZeroThresholdDisablesBreachChecks) {
  obs::SloWatchdogConfig config;
  config.window = 8;
  config.breach_us = 0.0;
  bool warned = false;
  config.on_warn = [&](const std::string&) { warned = true; };
  obs::SloWatchdog dog(config);
  for (int i = 0; i < 8; ++i) dog.observe(1e9, i);
  EXPECT_EQ(dog.breaches(), 0u);
  EXPECT_FALSE(warned);
}

#if TCSA_OBS_COMPILED
TEST(SloWatchdog, PublishesGaugesAndBreachCounterEvenWhenDisabled) {
  // The watchdog uses the *_always recorders: SLO state must stay visible
  // on a scrape even when per-request recording is gated off.
  const bool was_enabled = obs::enabled();
  obs::set_enabled(false);
  obs::SloWatchdogConfig config;
  config.window = 4;
  config.breach_us = 10.0;
  config.on_warn = [](const std::string&) {};
  obs::SloWatchdog dog(config);
  for (int i = 0; i < 4; ++i) dog.observe(40.0, i);
  obs::set_enabled(was_enabled);

  const obs::MetricsSnapshot snap = obs::snapshot();
  EXPECT_GE(snap.counter_value("tcsa_slo_breach_total"), 4u);
  EXPECT_DOUBLE_EQ(snap.gauge_value("tcsa_slot_lag_p99_us"), 40.0);
}
#endif

// ------------------------------------------------------------ http admin

/// Runs an HttpAdmin on a dedicated EventLoop thread for one test body.
class HttpAdminTest : public ::testing::Test {
 protected:
  void start_admin() {
    admin_ = std::make_unique<net::HttpAdmin>(loop_, "127.0.0.1", 0);
    admin_->route("/ping", [](std::string_view) {
      net::HttpResponse response;
      response.body = "pong\n";
      return response;
    });
    admin_->route("/echo", [](std::string_view query) {
      net::HttpResponse response;
      response.content_type = "application/json";
      response.body = "{\"query\": \"" + std::string(query) + "\"}";
      return response;
    });
    admin_->route("/big", [](std::string_view query) {
      // ?kb=N — a body far beyond any single write/chunk size, patterned
      // so truncation or reordering cannot go unnoticed.
      std::size_t kb = 64;
      if (query.substr(0, 3) == "kb=")
        kb = static_cast<std::size_t>(
            std::strtoull(std::string(query.substr(3)).c_str(), nullptr, 10));
      std::string body;
      body.reserve(kb * 1024);
      std::size_t line = 0;
      while (body.size() < kb * 1024)
        body += "line " + std::to_string(line++) + " of a deliberately "
                "oversized admin response body\n";
      net::HttpResponse response;
      response.body = std::move(body);
      return response;
    });
    admin_->start();
    loop_thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) loop_.poll(20);
    });
  }

  void TearDown() override {
    if (loop_thread_.joinable()) {
      loop_.post([this] {
        admin_->shutdown();
        stop_.store(true, std::memory_order_relaxed);
      });
      loop_thread_.join();
    }
  }

  net::EventLoop loop_;
  std::unique_ptr<net::HttpAdmin> admin_;
  std::thread loop_thread_;
  std::atomic<bool> stop_{false};
};

TEST_F(HttpAdminTest, RoutesAnswerWithBodyAndContentType) {
  start_admin();
  const net::HttpResponse pong =
      net::http_get("127.0.0.1", admin_->port(), "/ping");
  EXPECT_EQ(pong.status, 200);
  EXPECT_EQ(pong.body, "pong\n");
  EXPECT_NE(pong.content_type.find("text/plain"), std::string::npos);

  const net::HttpResponse echo =
      net::http_get("127.0.0.1", admin_->port(), "/echo?max=3");
  EXPECT_EQ(echo.status, 200);
  EXPECT_EQ(echo.body, "{\"query\": \"max=3\"}");
  EXPECT_NE(echo.content_type.find("application/json"), std::string::npos);
}

TEST_F(HttpAdminTest, UnknownPathIs404AndNonGetIs405) {
  start_admin();
  const net::HttpResponse missing =
      net::http_get("127.0.0.1", admin_->port(), "/nope");
  EXPECT_EQ(missing.status, 404);
  // http_get only sends GET; exercise the 405 path with a raw socket.
  net::Fd sock = net::connect_tcp("127.0.0.1", admin_->port());
  const std::string request = "POST /ping HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(sock.get(), request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string reply;
  char buf[512];
  ssize_t n;
  while ((n = ::recv(sock.get(), buf, sizeof(buf), 0)) > 0) {
    reply.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_NE(reply.find("405"), std::string::npos);
}

TEST_F(HttpAdminTest, LargeResponsesArriveCompleteAndInOrder) {
  // Regression: response bodies used to ride the queue as one monolithic
  // buffer; they are now chunked, and a body much larger than both the
  // chunk size and any socket buffer must still arrive byte-identical.
  start_admin();
  const net::HttpResponse big =
      net::http_get("127.0.0.1", admin_->port(), "/big?kb=512");
  ASSERT_EQ(big.status, 200);
  EXPECT_GE(big.body.size(), 512u * 1024u);
  // Rebuild the expected body and compare exactly: any dropped, duplicated
  // or reordered chunk changes the line numbering somewhere.
  std::string expected;
  expected.reserve(big.body.size());
  std::size_t line = 0;
  while (expected.size() < 512u * 1024u)
    expected += "line " + std::to_string(line++) + " of a deliberately "
                "oversized admin response body\n";
  EXPECT_EQ(big.body, expected);
}

TEST_F(HttpAdminTest, ServesManySequentialScrapesWithoutLeakingConns) {
  start_admin();
  for (int i = 0; i < 32; ++i) {
    const net::HttpResponse response =
        net::http_get("127.0.0.1", admin_->port(), "/ping");
    ASSERT_EQ(response.status, 200);
  }
  // Connections close after each response (HTTP/1.0); give the loop a
  // moment to reap the last close, then confirm nothing accumulated.
  for (int i = 0; i < 50 && admin_->connections() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(admin_->connections(), 0u);
}

}  // namespace
