// Tests for Theorem 3.1 (minimum number of channels).
#include <gtest/gtest.h>

#include "core/channel_bound.hpp"
#include "core/susc.hpp"
#include "model/validate.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

TEST(ChannelBound, PaperExample) {
  // Section 3.1: P = (2, 3), t = (2, 4) -> ceil(2/2 + 3/4) = ceil(1.75) = 2.
  const Workload w = make_workload({2, 4}, {2, 3});
  EXPECT_EQ(min_channels(w), 2);
  const BandwidthDemand d = bandwidth_demand(w);
  EXPECT_EQ(d.numerator, 7);   // 2*(4/2) + 3*(4/4)
  EXPECT_EQ(d.denominator, 4);
  EXPECT_DOUBLE_EQ(d.as_double(), 1.75);
}

TEST(ChannelBound, Fig2ExampleNeedsFourChannels) {
  // Section 4.4's example: P = (3, 5, 3), t = (2, 4, 8) -> four channels.
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  EXPECT_EQ(min_channels(w), 4);  // ceil(3/2 + 5/4 + 3/8) = ceil(3.125)
}

TEST(ChannelBound, SingleGroupExactDivision) {
  // 8 pages, deadline 4 -> exactly 2 channels, no rounding.
  EXPECT_EQ(min_channels(make_workload({4}, {8})), 2);
  // 9 pages -> 3 channels.
  EXPECT_EQ(min_channels(make_workload({4}, {9})), 3);
}

TEST(ChannelBound, AlwaysAtLeastOne) {
  EXPECT_EQ(min_channels(make_workload({512}, {1})), 1);
}

TEST(ChannelBound, PaperDefaultsAreAround64) {
  // Fig. 5(d) reports 64 minimally sufficient channels for the uniform
  // distribution; the exact value depends on rounding. Uniform sizes give
  // sum 125 * (1/4 + ... + 1/512) = 62.26 -> 63.
  const Workload w = make_paper_workload(GroupSizeShape::kUniform);
  EXPECT_GE(min_channels(w), 60);
  EXPECT_LE(min_channels(w), 66);
}

TEST(ChannelBound, LSkewDemandsMoreThanSSkew) {
  // Front-loaded deadlines are more expensive to meet.
  const Workload l = make_paper_workload(GroupSizeShape::kLSkewed);
  const Workload s = make_paper_workload(GroupSizeShape::kSSkewed);
  EXPECT_GT(min_channels(l), min_channels(s));
}

TEST(ChannelBound, SufficiencyPredicate) {
  const Workload w = make_workload({2, 4}, {2, 3});
  EXPECT_FALSE(channels_sufficient(w, 1));
  EXPECT_TRUE(channels_sufficient(w, 2));
  EXPECT_TRUE(channels_sufficient(w, 10));
}

TEST(ChannelBound, BoundScalesLinearlyWithPages) {
  const SlotCount base = min_channels(make_workload({4}, {4}));
  const SlotCount doubled = min_channels(make_workload({4}, {8}));
  EXPECT_EQ(doubled, 2 * base);
}

// Property: the bound is *achievable* — SUSC builds a valid program with
// exactly min_channels — and *tight* in bandwidth terms: demand never
// exceeds the bound, and exceeds bound-1 (otherwise fewer channels would do).
class BoundTightness
    : public ::testing::TestWithParam<std::tuple<GroupSizeShape, int>> {};

TEST_P(BoundTightness, AchievableAndTight) {
  const auto [shape, n] = GetParam();
  const Workload w = make_paper_workload(shape, 4, n, 2, 2);
  const SlotCount bound = min_channels(w);
  const BandwidthDemand demand = bandwidth_demand(w);
  EXPECT_LE(demand.as_double(), static_cast<double>(bound));
  EXPECT_GT(demand.as_double(), static_cast<double>(bound - 1));

  const BroadcastProgram program = schedule_susc(w, bound);
  EXPECT_TRUE(is_valid_program(program, w));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSizes, BoundTightness,
    ::testing::Combine(::testing::Values(GroupSizeShape::kUniform,
                                         GroupSizeShape::kNormal,
                                         GroupSizeShape::kLSkewed,
                                         GroupSizeShape::kSSkewed),
                       ::testing::Values(8, 40, 100, 333)),
    [](const auto& info) {
      return shape_name(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tcsa
