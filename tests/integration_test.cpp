// End-to-end tests: the unified API, the sweep driver, and a downsized
// Figure-5 reproduction asserting the paper's qualitative findings.
#include <gtest/gtest.h>

#include <map>

#include "core/api.hpp"
#include "core/channel_bound.hpp"
#include "model/validate.hpp"
#include "sim/sweep.hpp"
#include "workload/distributions.hpp"
#include "workload/rearrange.hpp"

namespace tcsa {
namespace {

// --------------------------------------------------------------- unified API

TEST(Api, MethodNamesRoundTrip) {
  for (const Method m : {Method::kSusc, Method::kPamad, Method::kMpb,
                         Method::kOpt, Method::kRoundRobin}) {
    EXPECT_EQ(parse_method(method_name(m)), m);
  }
  EXPECT_THROW(parse_method("bogus"), std::invalid_argument);
}

TEST(Api, AllMethodsProduceCompletePrograms) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  for (const Method m : {Method::kPamad, Method::kMpb, Method::kOpt,
                         Method::kRoundRobin}) {
    const ScheduleOutcome outcome = make_schedule(m, w, 2);
    EXPECT_EQ(outcome.method, m);
    EXPECT_EQ(outcome.program.cycle_length(), outcome.t_major);
    EXPECT_EQ(outcome.frequencies.size(), 3u);
    // Every page appears its S_i times.
    SlotCount expected_slots = 0;
    for (GroupId g = 0; g < w.group_count(); ++g)
      expected_slots += outcome.frequencies[static_cast<std::size_t>(g)] *
                        w.pages_in_group(g);
    EXPECT_EQ(outcome.program.occupied(), expected_slots) << method_name(m);
  }
}

TEST(Api, SuscThroughApiIsValid) {
  const Workload w = make_workload({2, 4}, {2, 3});
  const ScheduleOutcome outcome =
      make_schedule(Method::kSusc, w, min_channels(w));
  EXPECT_TRUE(is_valid_program(outcome.program, w));
  EXPECT_DOUBLE_EQ(outcome.predicted_delay, 0.0);
}

TEST(Api, SuscBelowBoundThrows) {
  const Workload w = make_workload({2, 4}, {2, 3});
  EXPECT_THROW(make_schedule(Method::kSusc, w, 1), std::invalid_argument);
}

// -------------------------------------------------------------- sweep driver

TEST(Sweep, CoversRangeAndMethods) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 4, 60, 2, 2);
  SweepConfig config;
  config.methods = {Method::kPamad, Method::kMpb};
  config.sim.requests.count = 500;
  const auto points = run_sweep(w, config);
  const SlotCount bound = min_channels(w);
  EXPECT_EQ(points.size(), static_cast<std::size_t>(bound) * 2);
  EXPECT_EQ(points.front().channels, 1);
  EXPECT_EQ(points.back().channels, bound);
}

TEST(Sweep, StepAndRangeRespected) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 4, 60, 2, 2);
  SweepConfig config;
  config.methods = {Method::kPamad};
  config.min_channels = 2;
  config.max_channels = 8;
  config.step = 3;
  config.sim.requests.count = 200;
  const auto points = run_sweep(w, config);
  ASSERT_EQ(points.size(), 3u);  // channels 2, 5, 8
  EXPECT_EQ(points[0].channels, 2);
  EXPECT_EQ(points[1].channels, 5);
  EXPECT_EQ(points[2].channels, 8);
}

TEST(Sweep, SuscSkippedBelowBound) {
  const Workload w = make_workload({2, 4}, {2, 3});  // bound = 2
  SweepConfig config;
  config.methods = {Method::kSusc};
  config.sim.requests.count = 100;
  const auto points = run_sweep(w, config);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].channels, 2);
}

TEST(Sweep, DeterministicAcrossRuns) {
  const Workload w = make_paper_workload(GroupSizeShape::kNormal, 4, 60, 2, 2);
  SweepConfig config;
  config.methods = {Method::kPamad};
  config.sim.requests.count = 300;
  const auto a = run_sweep(w, config);
  const auto b = run_sweep(w, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a[i].avg_delay, b[i].avg_delay);
}

TEST(Sweep, RejectsEmptyConfig) {
  const Workload w = make_workload({2}, {1});
  SweepConfig config;
  config.methods = {};
  EXPECT_THROW(run_sweep(w, config), std::invalid_argument);
}

// ------------------------------------- downsized Figure 5 (shape assertions)

// The full Figure 5 runs in the bench binaries; here a 300-page version
// asserts the paper's three stated findings per distribution:
//   1. PAMAD almost overlaps OPT,
//   2. PAMAD is much better than m-PB,
//   3. delay becomes near-ignorable by ~1/5 of the minimum channels.
class Figure5Shape : public ::testing::TestWithParam<GroupSizeShape> {};

TEST_P(Figure5Shape, QualitativeFindingsHold) {
  const Workload w = make_paper_workload(GetParam(), 8, 300, 4, 2);
  SweepConfig config;
  config.methods = {Method::kPamad, Method::kMpb, Method::kOpt};
  config.sim.requests.count = 3000;
  const auto points = run_sweep(w, config);

  std::map<SlotCount, std::map<Method, double>> by_channel;
  for (const SweepPoint& p : points)
    by_channel[p.channels][p.method] = p.avg_delay;

  const double scale = by_channel[1][Method::kPamad];  // worst-case delay
  ASSERT_GT(scale, 0.0);

  double pamad_sum = 0.0, mpb_sum = 0.0;
  for (const auto& [channels, methods] : by_channel) {
    const double pamad = methods.at(Method::kPamad);
    const double opt = methods.at(Method::kOpt);
    const double mpb = methods.at(Method::kMpb);
    // (1) PAMAD tracks OPT within 10% of the delay scale at every point
    //     (sampling noise included).
    EXPECT_LE(pamad - opt, scale * 0.10 + 0.5) << "channels=" << channels;
    // m-PB is never (materially) better than PAMAD anywhere.
    EXPECT_LE(pamad, mpb * 1.05 + scale * 0.02 + 0.5)
        << "channels=" << channels;
    pamad_sum += pamad;
    mpb_sum += mpb;
  }
  // (2) Aggregate gap: PAMAD at least 2x better than m-PB over the sweep.
  EXPECT_LT(pamad_sum * 2.0, mpb_sum);

  // (3) One-fifth rule, at this reduced scale a softer 20% bar (the paper's
  // full-size workload passes 5%; see PamadSchedule and the fig5 benches).
  // Meaningless for shapes whose minimum is single-digit channels.
  if (min_channels(w) >= 15) {
    const SlotCount fifth = (min_channels(w) + 4) / 5;
    EXPECT_LT(by_channel[fifth][Method::kPamad], scale * 0.20);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, Figure5Shape,
                         ::testing::ValuesIn(paper_shapes()),
                         [](const auto& info) {
                           return shape_name(info.param);
                         });

// -------------------------------------------- rearrangement end-to-end flow

TEST(EndToEnd, ArbitraryDeadlinesThroughRearrangeAndSchedule) {
  // The paper's Section 2 pipeline: arbitrary times -> ladder -> schedule.
  const std::vector<SlotCount> requested = {2, 3, 4, 6, 9, 5, 12, 7, 16, 10};
  const auto rearranged = rearrange_expected_times(requested, 2);
  const Workload& w = rearranged.workload;
  const SlotCount bound = min_channels(w);

  // Sufficient channels: every *original* deadline met, because assigned
  // times never exceed requested ones.
  const ScheduleOutcome outcome = make_schedule(Method::kSusc, w, bound);
  const ValidityReport report = validate_program(outcome.program, w);
  EXPECT_TRUE(report.valid);
  EXPECT_LE(report.worst_lateness, 0);

  // Insufficient channels: PAMAD still covers every page.
  const ScheduleOutcome tight = make_schedule(Method::kPamad, w, 1);
  const ValidityReport tight_report = validate_program(tight.program, w);
  for (PageId page = 0; page < w.total_pages(); ++page) {
    // No "page never appears" violations.
    for (const std::string& v : tight_report.violations)
      EXPECT_EQ(v.find("never appears"), std::string::npos);
  }
}

}  // namespace
}  // namespace tcsa
