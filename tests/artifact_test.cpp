// artifact_test.cpp — the cross-process artifact model: JSON parsing,
// snapshot import round-trips, merge algebra, trace merging and diffing.
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/artifact.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

using namespace tcsa;

namespace {

// ------------------------------------------------------------ JSON parser

TEST(Json, ParsesScalarsExactly) {
  EXPECT_EQ(obs::json_parse("null").kind, obs::JsonValue::Kind::kNull);
  EXPECT_TRUE(obs::json_parse("true").boolean);
  EXPECT_FALSE(obs::json_parse("false").boolean);
  EXPECT_DOUBLE_EQ(obs::json_parse("-2.5e2").number, -250.0);
  EXPECT_EQ(obs::json_parse("\"a\\u00e9b\"").string, "a\xc3\xa9"
                                                     "b");
}

TEST(Json, PreservesLargeCountersExactly) {
  // 2^63 + 3 is not representable as a double; the importer must keep the
  // exact integer so counter round-trips never lose precision.
  const std::uint64_t big = (1ULL << 63) + 3;
  const obs::JsonValue v = obs::json_parse("9223372036854775811");
  ASSERT_TRUE(v.is_uint);
  EXPECT_EQ(v.uint_value, big);
  EXPECT_EQ(obs::json_serialize(v), "9223372036854775811");
}

TEST(Json, ParsesNestedDocuments) {
  const obs::JsonValue v =
      obs::json_parse(R"({"a": [1, {"b": "x"}, null], "c": {}})");
  ASSERT_EQ(v.kind, obs::JsonValue::Kind::kObject);
  const obs::JsonValue& a = v.at("a");
  ASSERT_EQ(a.array.size(), 3u);
  EXPECT_EQ(a.array[1].at("b").string, "x");
  EXPECT_EQ(v.at("c").object.size(), 0u);
}

TEST(Json, RejectsMalformedInput) {
  const char* bad[] = {
      "",          "{",        "[1,",     "{\"a\":}",   "tru",
      "\"unterminated", "01",  "1.2.3",   "{\"a\" 1}",  "[1 2]",
      "\"\\q\"",   "nan",      "+1",      "{\"a\":1,}", "[]extra",
  };
  for (const char* text : bad)
    EXPECT_THROW(obs::json_parse(text), std::invalid_argument) << text;
}

TEST(Json, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(obs::json_parse(deep), std::invalid_argument);
}

TEST(Json, EscapesControlCharacters) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\nd\te\x01"), "a\\\"b\\\\c\\nd\\te\\u0001");
}

// ----------------------------------------------------------- manifest

TEST(Manifest, RoundTripsThroughJson) {
  obs::RunManifest m = obs::make_manifest("run-1", 2, 4, "fnv1a-abc", "sweep");
  m.metrics_file = "shard-2.metrics.json";
  m.trace_file = "shard-2.trace.json";
  m.points_file = "shard-2.points.json";
  const obs::RunManifest back = obs::manifest_from_json(obs::manifest_to_json(m));
  EXPECT_EQ(back.run_id, "run-1");
  EXPECT_EQ(back.shard_index, 2);
  EXPECT_EQ(back.shard_count, 4);
  EXPECT_EQ(back.config_digest, "fnv1a-abc");
  EXPECT_EQ(back.command, "sweep");
  EXPECT_EQ(back.hostname, m.hostname);
  EXPECT_EQ(back.git_describe, m.git_describe);
  EXPECT_EQ(back.os_pid, m.os_pid);
  EXPECT_EQ(back.wall_epoch_us, m.wall_epoch_us);
  EXPECT_EQ(back.metrics_file, m.metrics_file);
  EXPECT_EQ(back.trace_file, m.trace_file);
  EXPECT_EQ(back.points_file, m.points_file);
}

TEST(Manifest, RejectsWrongSchemaAndMissingFields) {
  EXPECT_THROW(obs::manifest_from_json("{\"schema\":\"bogus/v9\"}"),
               std::invalid_argument);
  EXPECT_THROW(obs::manifest_from_json("{}"), std::invalid_argument);
  EXPECT_THROW(obs::manifest_from_json("[]"), std::invalid_argument);
}

// ----------------------------------------------- snapshot import/export

/// A randomized snapshot: a handful of counters, gauges and histograms with
/// structurally valid buckets. `name_salt` keeps two generations disjoint.
obs::MetricsSnapshot random_snapshot(Rng& rng, const std::string& name_salt) {
  obs::MetricsSnapshot s;
  const int n_counters = static_cast<int>(rng.uniform_int(0, 5));
  for (int i = 0; i < n_counters; ++i) {
    obs::CounterSnapshot c;
    c.name = "tcsa_" + name_salt + "_c" + std::to_string(i) + "_total";
    c.value = rng();  // full 64-bit range: exercises the exact-u64 path
    s.counters.push_back(c);
  }
  const int n_gauges = static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < n_gauges; ++i) {
    obs::GaugeSnapshot g;
    g.name = "tcsa_" + name_salt + "_g" + std::to_string(i);
    g.value = rng.uniform_real(-1e6, 1e6);
    s.gauges.push_back(g);
  }
  const int n_hists = static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < n_hists; ++i) {
    obs::HistogramSnapshot h;
    h.name = "tcsa_" + name_salt + "_h" + std::to_string(i);
    // Bounds are a function of the name: merge requires same-name
    // histograms to share bucket layouts, exactly like the live registry.
    const int n_buckets = 2 + i;
    for (int b = 0; b < n_buckets; ++b)
      h.upper_bounds.push_back(std::pow(2.0, b));
    for (int b = 0; b <= n_buckets; ++b)
      h.counts.push_back(static_cast<std::uint64_t>(rng.uniform_int(0, 1000)));
    h.sum = rng.uniform_real(0.0, 1e6);
    s.histograms.push_back(h);
  }
  return s;
}

TEST(SnapshotImport, RoundTripIsIdentityFuzzed) {
  Rng rng(20260805);
  for (int trial = 0; trial < 200; ++trial) {
    const obs::MetricsSnapshot s = random_snapshot(rng, "rt");
    const obs::MetricsSnapshot back = obs::snapshot_from_json(s.to_json());
    EXPECT_TRUE(obs::snapshots_equal(s, back)) << "trial " << trial;
    // Double export must be byte-stable, not just value-stable.
    EXPECT_EQ(back.to_json(), obs::snapshot_from_json(back.to_json()).to_json());
  }
}

TEST(SnapshotImport, ImportsLiveRegistryExport) {
  const obs::MetricsSnapshot live = obs::snapshot();
  const obs::MetricsSnapshot back = obs::snapshot_from_json(live.to_json());
  EXPECT_TRUE(obs::snapshots_equal(live, back));
}

TEST(SnapshotImport, RejectsMalformedSnapshots) {
  const char* bad[] = {
      "{}",                                   // missing sections
      "{\"counters\":{},\"gauges\":{}}",      // missing histograms
      "{\"counters\":[],\"gauges\":{},\"histograms\":{}}",  // wrong type
      "{\"counters\":{\"x\":-1},\"gauges\":{},\"histograms\":{}}",  // negative
      "{\"counters\":{\"x\":1.5},\"gauges\":{},\"histograms\":{}}",  // fraction
      // bucket counts don't sum to count:
      R"({"counters":{},"gauges":{},"histograms":{"h":{"sum":1,"count":5,
          "buckets":[{"le":1,"count":1},{"le":"+Inf","count":1}]}}})",
      // non-ascending bounds:
      R"({"counters":{},"gauges":{},"histograms":{"h":{"sum":1,"count":2,
          "buckets":[{"le":5,"count":1},{"le":2,"count":0},
                     {"le":"+Inf","count":1}]}}})",
      // missing +Inf bucket:
      R"({"counters":{},"gauges":{},"histograms":{"h":{"sum":1,"count":1,
          "buckets":[{"le":5,"count":1}]}}})",
  };
  for (const char* text : bad)
    EXPECT_THROW(obs::snapshot_from_json(text), std::invalid_argument) << text;
}

TEST(SnapshotImport, FuzzedGarbageNeverCrashes) {
  // Mutate a valid export with random splices; every outcome must be either
  // a clean parse or std::invalid_argument — never a crash or hang.
  Rng rng(77);
  const std::string good = random_snapshot(rng, "fz").to_json();
  for (int trial = 0; trial < 500; ++trial) {
    std::string text = good;
    const int edits = static_cast<int>(rng.uniform_int(1, 4));
    for (int e = 0; e < edits && !text.empty(); ++e) {
      const std::size_t pos =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0: text[pos] = static_cast<char>(rng.uniform_int(32, 126)); break;
        case 1: text.erase(pos, 1); break;
        default: text.insert(pos, 1, static_cast<char>(rng.uniform_int(32, 126)));
      }
    }
    try {
      (void)obs::snapshot_from_json(text);
    } catch (const std::invalid_argument&) {
      // expected for most mutations
    }
  }
}

// ------------------------------------------------------- merge algebra

TEST(MergeAlgebra, AssociativeOnDisjointAndOverlappingNames) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    // Overlap is the interesting case: b and c share the "ab" salt with a.
    obs::MetricsSnapshot a = random_snapshot(rng, "ab");
    obs::MetricsSnapshot b = random_snapshot(rng, "ab");
    obs::MetricsSnapshot c = random_snapshot(rng, "cd");

    obs::MetricsSnapshot left = a;   // (a ⊕ b) ⊕ c
    left.merge(b);
    left.merge(c);
    obs::MetricsSnapshot bc = b;     // a ⊕ (b ⊕ c)
    bc.merge(c);
    obs::MetricsSnapshot right = a;
    right.merge(bc);
    EXPECT_TRUE(obs::snapshots_equal(left, right, 1e-9)) << "trial " << trial;
  }
}

TEST(MergeAlgebra, CommutativeUpToGaugeSemantics) {
  // Gauges are last-writer-wins, so commutativity is only promised for
  // counter/histogram content; generate gauge-free snapshots.
  Rng rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    obs::MetricsSnapshot a = random_snapshot(rng, "ab");
    obs::MetricsSnapshot b = random_snapshot(rng, "ab");
    a.gauges.clear();
    b.gauges.clear();
    obs::MetricsSnapshot ab = a;
    ab.merge(b);
    obs::MetricsSnapshot ba = b;
    ba.merge(a);
    EXPECT_TRUE(obs::snapshots_equal(ab, ba, 1e-9)) << "trial " << trial;
  }
}

TEST(MergeAlgebra, MinusThenMergeRestoresWhole) {
  // a.minus(b).merge(b) == a whenever b is a sub-snapshot of a — the exact
  // shape produced by run_sweep_shard's before/after delta.
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    obs::MetricsSnapshot a = random_snapshot(rng, "w");
    obs::MetricsSnapshot b = a;  // same names and bounds, scaled-down values
    for (auto& c : b.counters) c.value /= 2;
    for (auto& h : b.histograms) {
      for (auto& count : h.counts) count /= 2;
      h.sum /= 2;
    }
    obs::MetricsSnapshot restored = a.minus(b);
    restored.merge(b);
    EXPECT_TRUE(obs::snapshots_equal(restored, a, 1e-6)) << "trial " << trial;
  }
}

// ---------------------------------------------------------------- diff

obs::MetricsSnapshot counters_only(
    std::initializer_list<std::pair<const char*, std::uint64_t>> kv) {
  obs::MetricsSnapshot s;
  for (const auto& [name, value] : kv) {
    obs::CounterSnapshot c;
    c.name = name;
    c.value = value;
    s.counters.push_back(c);
  }
  return s;
}

TEST(Diff, IdenticalSnapshotsAreClean) {
  const obs::MetricsSnapshot s = counters_only({{"a_total", 10}, {"b_total", 0}});
  const obs::DiffResult r = obs::diff_snapshots(s, s, {});
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.regressions, 0u);
  EXPECT_EQ(r.entries.size(), 2u);
}

TEST(Diff, FlagsDriftBeyondTolerance) {
  const obs::MetricsSnapshot base = counters_only({{"a_total", 100}});
  const obs::MetricsSnapshot current = counters_only({{"a_total", 104}});
  obs::DiffOptions tight;  // zero tolerance
  EXPECT_FALSE(obs::diff_snapshots(base, current, tight).clean());

  obs::DiffOptions loose;
  loose.rel_tol = 0.05;  // 4% drift within 5%
  EXPECT_TRUE(obs::diff_snapshots(base, current, loose).clean());

  obs::DiffOptions abs_only;
  abs_only.abs_tol = 4.0;
  EXPECT_TRUE(obs::diff_snapshots(base, current, abs_only).clean());
  abs_only.abs_tol = 3.0;
  EXPECT_FALSE(obs::diff_snapshots(base, current, abs_only).clean());
}

TEST(Diff, MissingMetricIsRegressionNewMetricIsAdvisory) {
  const obs::MetricsSnapshot base = counters_only({{"a_total", 1}, {"b_total", 2}});
  const obs::MetricsSnapshot current = counters_only({{"a_total", 1}, {"c_total", 3}});
  const obs::DiffResult r = obs::diff_snapshots(base, current, {});
  EXPECT_FALSE(r.clean());  // b_total vanished
  bool saw_missing = false, saw_new = false;
  for (const auto& e : r.entries) {
    if (e.name == "b_total") {
      EXPECT_TRUE(e.current_missing);
      saw_missing = true;
    }
    if (e.name == "c_total") {
      EXPECT_TRUE(e.base_missing);
      EXPECT_FALSE(e.out_of_tolerance);  // new metrics never fail the gate
      saw_new = true;
    }
  }
  EXPECT_TRUE(saw_missing);
  EXPECT_TRUE(saw_new);
}

TEST(Diff, ComparesHistogramCountAndSumButNotGauges) {
  obs::MetricsSnapshot base;
  obs::HistogramSnapshot h;
  h.name = "tcsa_wait";
  h.upper_bounds = {1.0};
  h.counts = {3, 1};
  h.sum = 2.5;
  base.histograms.push_back(h);
  obs::GaugeSnapshot g;
  g.name = "tcsa_load";
  g.value = 0.5;
  base.gauges.push_back(g);

  obs::MetricsSnapshot current = base;
  current.gauges[0].value = 99.0;  // gauges are excluded: still clean
  EXPECT_TRUE(obs::diff_snapshots(base, current, {}).clean());

  current.histograms[0].counts[1] = 2;  // count series changed
  EXPECT_FALSE(obs::diff_snapshots(base, current, {}).clean());
}

TEST(Diff, MarkdownNamesRegressedMetric) {
  const obs::MetricsSnapshot base = counters_only({{"a_total", 10}});
  const obs::MetricsSnapshot current = counters_only({{"a_total", 5}});
  const std::string md = obs::diff_snapshots(base, current, {}).to_markdown();
  EXPECT_NE(md.find("a_total"), std::string::npos);
  EXPECT_NE(md.find("REGRESSION"), std::string::npos);
}

// ------------------------------------------------------------ quantiles

TEST(HistogramQuantile, InterpolatesWithinBuckets) {
  obs::HistogramSnapshot h;
  h.upper_bounds = {1.0, 2.0, 4.0};
  h.counts = {10, 10, 10, 0};  // 30 observations, none above 4
  h.sum = 60.0;
  EXPECT_NEAR(obs::histogram_quantile(h, 0.5), 1.5, 1e-9);
  EXPECT_NEAR(obs::histogram_quantile(h, 1.0 / 3.0), 1.0, 1e-9);
  EXPECT_NEAR(obs::histogram_quantile(h, 0.95), 3.7, 1e-9);
  // Mass in +Inf clamps to the last finite bound.
  h.counts = {0, 0, 0, 5};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.9), 4.0);
}

// -------------------------------------------------------- trace merging

obs::TraceShard fake_shard(int index, int count, std::uint64_t wall_us,
                           const std::string& events) {
  obs::TraceShard shard;
  shard.manifest = obs::make_manifest("run-x", index, count, "fnv1a-1", "sweep");
  shard.manifest.wall_epoch_us = wall_us;
  shard.trace_json = "{\"traceEvents\":[" + events + "]}";
  return shard;
}

TEST(TraceMerge, RekeysPidsAndAlignsClocks) {
  const std::vector<obs::TraceShard> shards = {
      fake_shard(0, 2, 1000,
                 R"({"name":"a","ph":"X","ts":5,"dur":2,"pid":4242,"tid":1})"),
      fake_shard(1, 2, 1300,
                 R"({"name":"b","ph":"X","ts":5,"dur":2,"pid":4242,"tid":1})"),
  };
  const obs::JsonValue doc = obs::json_parse(obs::merge_chrome_traces(shards));
  const obs::JsonValue& events = doc.at("traceEvents");

  std::vector<std::uint64_t> span_ts;
  std::vector<std::uint64_t> span_pids;
  int metadata = 0;
  for (const obs::JsonValue& e : events.array) {
    if (e.at("ph").string == "M") {
      ++metadata;
      continue;
    }
    span_pids.push_back(e.at("pid").uint_value);
    span_ts.push_back(e.at("ts").uint_value);
  }
  ASSERT_EQ(span_pids.size(), 2u);
  EXPECT_EQ(metadata, 2);  // one process_name record per shard
  // Shard 0 keeps ts=5; shard 1 started 300 µs later so its span shifts.
  EXPECT_EQ(span_ts[0], 5u);
  EXPECT_EQ(span_ts[1], 305u);
  EXPECT_EQ(span_pids[0], 1u);  // re-keyed to shard_index + 1
  EXPECT_EQ(span_pids[1], 2u);
}

TEST(TraceMerge, RefusesMixedRuns) {
  std::vector<obs::TraceShard> shards = {
      fake_shard(0, 2, 0, ""), fake_shard(1, 2, 0, "")};
  shards[1].manifest.run_id = "other-run";
  EXPECT_THROW(obs::merge_chrome_traces(shards), std::invalid_argument);
  shards[1].manifest.run_id = "run-x";
  shards[1].manifest.config_digest = "fnv1a-2";
  EXPECT_THROW(obs::merge_chrome_traces(shards), std::invalid_argument);
}

// ------------------------------------------------ bench-document import

TEST(BenchImport, ExtractsPerBenchmarkCounters) {
  const std::string doc = R"({
    "suites": {
      "micro": {
        "benchmarks": [
          {"name": "BM_Opt/8", "real_time": 1.5, "opt_nodes_total": 120,
           "items_per_second": 9.0},
          {"name": "BM_Place/4", "placement_runs_total": 7}
        ]
      }
    }
  })";
  const obs::MetricsSnapshot s = obs::counters_from_json_document(doc);
  EXPECT_EQ(s.counter_value("micro/BM_Opt/8/opt_nodes_total"), 120u);
  EXPECT_EQ(s.counter_value("micro/BM_Place/4/placement_runs_total"), 7u);
  EXPECT_EQ(s.counters.size(), 2u);  // non-_total fields are not counters
}

TEST(BenchImport, FallsBackToSnapshotGrammar) {
  const obs::MetricsSnapshot orig = counters_only({{"tcsa_x_total", 9}});
  const obs::MetricsSnapshot s = obs::counters_from_json_document(orig.to_json());
  EXPECT_EQ(s.counter_value("tcsa_x_total"), 9u);
  EXPECT_THROW(obs::counters_from_json_document("{\"neither\":1}"),
               std::invalid_argument);
}

// ------------------------------------------------------- sweep points

TEST(SweepPoints, RoundTripThroughJson) {
  std::vector<obs::SweepPointRecord> points(2);
  points[0] = {3, "pamad", 1.5, 1.25, 0.01, 4.0, 96, 0};
  points[1] = {4, "opt", 0.5, 0.5, 0.0, 1.0, 96, 2};
  const std::vector<obs::SweepPointRecord> back =
      obs::points_from_json(obs::points_to_json(points));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].channels, 3);
  EXPECT_EQ(back[0].method, "pamad");
  EXPECT_DOUBLE_EQ(back[0].avg_delay, 1.5);
  EXPECT_DOUBLE_EQ(back[0].miss_rate, 0.01);
  EXPECT_EQ(back[1].window_overflows, 2);
}

}  // namespace
