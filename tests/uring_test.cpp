// uring_test.cpp — the io_uring batched-egress backend: one-syscall batch
// submission with byte-exact delivery, inline -EAGAIN completions and
// resume, SQ-window backpressure when a batch exceeds ring capacity, and
// the degradation ladder (compiled-out stub, forced-ENOSYS runtime
// fallback, --uring on refusing to start without the backend).
#include <stdlib.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/api.hpp"
#include "model/validate.hpp"
#include "model/workload.hpp"
#include "net/framing.hpp"
#include "net/out_queue.hpp"
#include "net/shared_buf.hpp"
#include "net/socket.hpp"
#include "net/uring_flush.hpp"
#include "server/air_server.hpp"
#include "server/tune_client.hpp"

using namespace tcsa;

namespace {

Workload paper_workload() { return make_workload({2, 4, 8}, {3, 5, 3}); }

/// Scoped TCSA_URING_FORCE_ENOSYS=1 — the runtime-fallback switch the
/// degradation-ladder tests flip (supported() re-reads it every call).
struct ForcedEnosys {
  ForcedEnosys() { ::setenv("TCSA_URING_FORCE_ENOSYS", "1", 1); }
  ~ForcedEnosys() { ::unsetenv("TCSA_URING_FORCE_ENOSYS"); }
};

struct SocketPair {
  net::Fd writer;
  net::Fd reader;
};

SocketPair make_pair_with_sndbuf(int sndbuf_bytes) {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  SocketPair pair{net::Fd(fds[0]), net::Fd(fds[1])};
  net::set_nonblocking(pair.writer.get(), true);
  net::set_nonblocking(pair.reader.get(), true);
  if (sndbuf_bytes > 0) net::set_send_buffer(pair.writer.get(), sndbuf_bytes);
  return pair;
}

std::string read_up_to(int fd, std::size_t cap) {
  std::string out;
  std::vector<char> buffer(4096);
  while (out.size() < cap) {
    const ssize_t n = ::recv(fd, buffer.data(),
                             std::min(buffer.size(), cap - out.size()), 0);
    if (n > 0) {
      out.append(buffer.data(), static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EAGAIN or EOF
  }
  return out;
}

class ServerHarness {
 public:
  ServerHarness(Workload workload, AirServerConfig config)
      : server_(std::move(workload), config),
        thread_([this] { server_.run(); }) {}
  ~ServerHarness() {
    server_.stop();
    if (thread_.joinable()) thread_.join();
  }
  AirServer& server() { return server_; }
  TuneClient::Options client_options(std::uint64_t mask) const {
    TuneClient::Options options;
    options.port = server_.port();
    options.channel_mask = mask;
    return options;
  }

 private:
  AirServer server_;
  std::thread thread_;
};

// --------------------------------------------------- ring-level primitives

// One io_uring_enter moves one frame to each of many targets, byte-exact.
TEST(UringFlusher, SubmitsAWholeFleetInOneSyscall) {
  if (!net::UringFlusher::supported()) GTEST_SKIP() << "io_uring unavailable";
  constexpr std::size_t kTargets = 10;
  net::UringFlusher ring(64);
  EXPECT_GE(ring.capacity(), 64u);
  EXPECT_GE(ring.event_fd(), 0);

  std::vector<SocketPair> pairs;
  std::vector<std::string> payloads;
  for (std::size_t i = 0; i < kTargets; ++i) {
    pairs.push_back(make_pair_with_sndbuf(1 << 20));
    payloads.push_back(std::string(512 + i, static_cast<char>('A' + i)));
  }
  std::vector<iovec> iov(kTargets);
  std::vector<msghdr> msgs(kTargets);
  for (std::size_t i = 0; i < kTargets; ++i) {
    iov[i] = {payloads[i].data(), payloads[i].size()};
    msgs[i] = msghdr{};
    msgs[i].msg_iov = &iov[i];
    msgs[i].msg_iovlen = 1;
    ASSERT_TRUE(ring.push_sendmsg(pairs[i].writer.get(), &msgs[i], i));
  }
  EXPECT_EQ(ring.staged(), kTargets);

  const std::size_t enters = ring.submit_and_wait(kTargets);
  EXPECT_EQ(enters, 1u) << "submit and wait must share one enter syscall";
  EXPECT_EQ(ring.staged(), 0u);

  std::vector<net::UringFlusher::Completion> cqes;
  ASSERT_EQ(ring.harvest(cqes), kTargets);
  EXPECT_EQ(ring.inflight(), 0u);
  std::vector<bool> seen(kTargets, false);
  for (const net::UringFlusher::Completion& cqe : cqes) {
    ASSERT_LT(cqe.user_data, kTargets);
    EXPECT_FALSE(seen[cqe.user_data]) << "duplicate completion";
    seen[cqe.user_data] = true;
    EXPECT_EQ(cqe.res,
              static_cast<std::int32_t>(payloads[cqe.user_data].size()));
  }
  for (std::size_t i = 0; i < kTargets; ++i)
    EXPECT_EQ(read_up_to(pairs[i].reader.get(), payloads[i].size()),
              payloads[i])
        << "target " << i << " bytes differ";
}

// A full socket completes inline with -EAGAIN in the CQE (MSG_DONTWAIT, no
// io-wq punt); once the reader drains, the same msghdr resumes cleanly.
TEST(UringFlusher, FullSocketYieldsInlineEagainAndResumes) {
  if (!net::UringFlusher::supported()) GTEST_SKIP() << "io_uring unavailable";
  net::UringFlusher ring(8);
  SocketPair pair = make_pair_with_sndbuf(4096);

  // Fill the send buffer the classic way until the kernel refuses.
  const std::string block(4096, 'x');
  while (true) {
    const ssize_t n =
        ::send(pair.writer.get(), block.data(), block.size(), MSG_NOSIGNAL);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    ASSERT_FALSE(n < 0 && errno != EINTR) << std::strerror(errno);
  }

  std::string payload(64, 'y');
  iovec iov{payload.data(), payload.size()};
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  ASSERT_TRUE(ring.push_sendmsg(pair.writer.get(), &msg, 1));
  ring.submit_and_wait(1);
  std::vector<net::UringFlusher::Completion> cqes;
  ASSERT_EQ(ring.harvest(cqes), 1u);
  EXPECT_EQ(cqes.front().res, -EAGAIN)
      << "a would-block send must complete inline, not punt to a worker";

  // Drain everything queued ahead, then the same SQE goes through.
  while (!read_up_to(pair.reader.get(), 1 << 20).empty()) {
  }
  cqes.clear();
  ASSERT_TRUE(ring.push_sendmsg(pair.writer.get(), &msg, 2));
  ring.submit_and_wait(1);
  ASSERT_EQ(ring.harvest(cqes), 1u);
  EXPECT_EQ(cqes.front().res, static_cast<std::int32_t>(payload.size()));
  EXPECT_EQ(read_up_to(pair.reader.get(), payload.size()), payload);
}

// When the batch outgrows the ring, push_sendmsg reports SQ-full and the
// caller windows: submit, harvest, continue. Every byte still lands.
TEST(UringFlusher, WindowsABatchLargerThanTheRing) {
  if (!net::UringFlusher::supported()) GTEST_SKIP() << "io_uring unavailable";
  net::UringFlusher ring(2);
  ASSERT_GE(ring.capacity(), 2u);
  const std::size_t window = ring.capacity();
  const std::size_t targets = window * 2 + 1;

  std::vector<SocketPair> pairs;
  std::vector<std::string> payloads;
  std::vector<iovec> iov(targets);
  std::vector<msghdr> msgs(targets);
  for (std::size_t i = 0; i < targets; ++i) {
    pairs.push_back(make_pair_with_sndbuf(1 << 20));
    payloads.push_back(std::string(128, static_cast<char>('a' + i % 26)));
    iov[i] = {payloads[i].data(), payloads[i].size()};
    msgs[i] = msghdr{};
    msgs[i].msg_iov = &iov[i];
    msgs[i].msg_iovlen = 1;
  }

  std::vector<net::UringFlusher::Completion> cqes;
  std::size_t pushed = 0;
  std::size_t full_rejections = 0;
  while (pushed < targets) {
    if (!ring.push_sendmsg(pairs[pushed].writer.get(), &msgs[pushed],
                           pushed)) {
      ++full_rejections;
      ring.submit_and_wait(ring.staged());
      ring.harvest(cqes);
      continue;
    }
    ++pushed;
  }
  if (ring.staged() > 0) {
    ring.submit_and_wait(ring.staged());
    ring.harvest(cqes);
  }
  EXPECT_GT(full_rejections, 0u) << "the batch never hit the SQ bound";
  ASSERT_EQ(cqes.size(), targets);
  for (std::size_t i = 0; i < targets; ++i)
    EXPECT_EQ(read_up_to(pairs[i].reader.get(), payloads[i].size()),
              payloads[i]);
}

// ------------------------------------------------------ degradation ladder

// The TCSA_URING=OFF build keeps the full API surface but can never be
// supported and refuses construction (this runs in the uring-off CI leg;
// in a normal build it just documents the compiled() gate).
TEST(UringFlusher, CompiledOutStubIsNeverSupported) {
  if (net::UringFlusher::compiled()) GTEST_SKIP() << "backend compiled in";
  EXPECT_FALSE(net::UringFlusher::probe());
  EXPECT_FALSE(net::UringFlusher::supported());
  EXPECT_THROW(net::UringFlusher ring(8), std::runtime_error);
}

TEST(UringFlusher, ForcedEnosysDisablesTheProbeAndConstruction) {
  ForcedEnosys forced;
  EXPECT_FALSE(net::UringFlusher::probe());
  EXPECT_FALSE(net::UringFlusher::supported());
  EXPECT_THROW(net::UringFlusher ring(8), std::runtime_error);
}

// --------------------------------------------------- server integration

// With the backend forced unavailable, --uring auto serves on the classic
// sendmsg path: same wire, same deadlines, uring_active() false.
TEST(UringServer, AutoModeFallsBackToSendmsgWhenUnavailable) {
  ForcedEnosys forced;
  AirServerConfig config;
  config.slot_us = 1000;
  config.max_slots = 0;
  config.uring = UringMode::kAuto;
  ServerHarness harness(paper_workload(), config);
  EXPECT_FALSE(harness.server().uring_active());

  TuneClient client(harness.client_options(net::kAllChannels));
  client.run(30);
  const TuneSummary summary = client.summary();
  EXPECT_GE(summary.slots_seen, 30u);
  EXPECT_EQ(summary.deadline_misses, 0u);
  EXPECT_EQ(harness.server().uring_enters(), 0u);
}

// --uring on is a hard requirement: an unavailable backend fails startup
// instead of silently degrading.
TEST(UringServer, ModeOnRefusesToStartWithoutTheBackend) {
  ForcedEnosys forced;
  AirServerConfig config;
  config.slot_us = 1000;
  config.uring = UringMode::kOn;
  EXPECT_THROW(AirServer server(paper_workload(), config),
               std::runtime_error);
}

// The batched path end to end: a sharded server with --uring on airs a
// broadcast that reconstructs to a valid program, and the enter/SQE
// counters show real batching (strictly fewer syscalls than sends).
TEST(UringServer, BatchedEgressServesAValidBroadcast) {
  if (!net::UringFlusher::supported()) GTEST_SKIP() << "io_uring unavailable";
  AirServerConfig config;
  config.slot_us = 400;
  config.max_slots = 600;
  config.loops = 2;
  config.uring = UringMode::kOn;
  ServerHarness harness(paper_workload(), config);
  ASSERT_TRUE(harness.server().uring_active());

  TuneClient::Options options = harness.client_options(net::kAllChannels);
  options.record_pages = true;
  TuneClient recorder(options);
  recorder.run(0);
  EXPECT_EQ(recorder.summary().deadline_misses, 0u);

  const std::vector<ReceivedPage>& pages = recorder.pages();
  ASSERT_FALSE(pages.empty());
  std::uint64_t first = pages.front().slot;
  for (const ReceivedPage& page : pages) first = std::min(first, page.slot);
  BroadcastProgram program(recorder.channels(), recorder.cycle_length());
  for (const ReceivedPage& page : pages) {
    if (page.slot < first || page.slot >= first + recorder.cycle_length())
      continue;
    program.place(static_cast<SlotCount>(page.channel),
                  static_cast<SlotCount>(page.slot - first), page.page);
  }
  const ValidityReport report = validate_program(program, paper_workload());
  EXPECT_TRUE(report.valid)
      << (report.violations.empty() ? "" : report.violations.front());

  const std::uint64_t enters = harness.server().uring_enters();
  const std::uint64_t sqes = harness.server().uring_sqes();
  EXPECT_GT(enters, 0u) << "kOn server never used the ring";
  EXPECT_GE(sqes, enters) << "each enter must carry at least one SQE";
}

}  // namespace
