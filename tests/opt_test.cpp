// Tests for the OPT comparator: brute force as ground truth, the
// paper-scale ladder + hill-climb search matching it, and OPT's ordering
// relative to PAMAD.
#include <gtest/gtest.h>

#include <vector>

#include "core/channel_bound.hpp"
#include "core/delay_model.hpp"
#include "core/opt.hpp"
#include "core/pamad.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

TEST(BruteForce, FindsZeroDelayWhenChannelsSufficient) {
  const Workload w = make_workload({2, 4}, {2, 3});
  const OptResult r = brute_force_frequencies(w, 2, 4);
  EXPECT_DOUBLE_EQ(r.predicted_delay, 0.0);
}

TEST(BruteForce, SingleGroupOptimumIsOneCopy) {
  // One group: any S > 1 shortens spacing but S = 1 already gives
  // spacing = ceil(P/channels); more copies cannot reduce spacing below
  // cycle/S = P/channels — delay is constant, so tie-break keeps S = 1.
  const Workload w = make_workload({2}, {10});
  const OptResult r = brute_force_frequencies(w, 2, 6);
  EXPECT_EQ(r.S, (std::vector<SlotCount>{1}));
}

TEST(BruteForce, EvaluatesEntireSpace) {
  const Workload w = make_workload({2, 4}, {2, 2});
  const OptResult r = brute_force_frequencies(w, 1, 5);
  EXPECT_EQ(r.evaluations, 25u);  // 5^2
}

TEST(BruteForce, RefusesHugeSpaces) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform);
  EXPECT_THROW(brute_force_frequencies(w, 4, 100), std::invalid_argument);
}

// Ground truth: the production OPT search matches brute force wherever
// brute force is feasible.
struct OptCase {
  SlotCount t1, c;
  std::vector<SlotCount> pages;
  SlotCount channels;
  SlotCount brute_cap;
};

class OptMatchesBruteForce : public ::testing::TestWithParam<OptCase> {};

TEST_P(OptMatchesBruteForce, AtLeastAsGoodAsCapLimitedExhaustive) {
  // Brute force is exhaustive only up to its frequency cap; the production
  // search works on an uncapped space (waterfilling scales can exceed the
  // cap), so it must reach a delay at least as low — and stay close, since
  // the capped optimum is already near the continuous one.
  const OptCase& tc = GetParam();
  std::vector<SlotCount> times;
  SlotCount t = tc.t1;
  for (std::size_t i = 0; i < tc.pages.size(); ++i, t *= tc.c)
    times.push_back(t);
  const Workload w = make_workload(times, tc.pages);

  const OptResult brute = brute_force_frequencies(w, tc.channels, tc.brute_cap);
  const OptResult fast = opt_frequencies_unconstrained(w, tc.channels);
  EXPECT_LE(fast.predicted_delay, brute.predicted_delay + 1e-9)
      << w.describe() << " channels=" << tc.channels;
  EXPECT_GE(fast.predicted_delay, brute.predicted_delay * 0.90 - 1e-3)
      << w.describe() << " channels=" << tc.channels;

  // The placeable (ladder) OPT is weaker by construction but must stay in
  // the same delay regime as the unconstrained optimum.
  const OptResult ladder = opt_frequencies(w, tc.channels);
  EXPECT_GE(ladder.predicted_delay, fast.predicted_delay - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, OptMatchesBruteForce,
    ::testing::Values(
        OptCase{2, 2, {3, 5, 3}, 1, 12},
        OptCase{2, 2, {3, 5, 3}, 2, 12},
        OptCase{2, 2, {3, 5, 3}, 3, 12},
        OptCase{2, 2, {2, 3}, 1, 16},
        OptCase{2, 2, {6, 2}, 1, 16},
        OptCase{2, 2, {1, 9}, 2, 16},
        OptCase{4, 2, {10, 10, 10}, 3, 10},
        OptCase{2, 3, {4, 4, 4}, 2, 10},
        OptCase{3, 2, {7, 2, 5}, 2, 10},
        OptCase{2, 2, {5, 5, 5, 5}, 3, 8},
        OptCase{2, 2, {8, 1, 1, 8}, 2, 8},
        OptCase{4, 4, {3, 9, 3}, 2, 10}),
    [](const auto& info) {
      return "case" + std::to_string(info.index);
    });

TEST(Opt, NeverWorseThanPamad) {
  for (const GroupSizeShape shape : paper_shapes()) {
    const Workload w = make_paper_workload(shape, 6, 300, 4, 2);
    for (SlotCount channels = 1; channels <= min_channels(w); channels += 3) {
      const double opt = opt_frequencies(w, channels).predicted_delay;
      const double pamad = pamad_frequencies(w, channels).predicted_delay;
      EXPECT_LE(opt, pamad + 1e-9)
          << shape_name(shape) << " channels=" << channels;
    }
  }
}

TEST(Opt, PamadTracksOptClosely) {
  // The Section 5 headline: PAMAD "almost overlaps" OPT. Quantified here as
  // an absolute gap below 8% of the single-channel delay scale at every
  // swept point.
  for (const GroupSizeShape shape : paper_shapes()) {
    const Workload w = make_paper_workload(shape, 6, 300, 4, 2);
    const double scale = pamad_frequencies(w, 1).predicted_delay;
    for (SlotCount channels = 1; channels <= min_channels(w); channels += 2) {
      const double opt = opt_frequencies(w, channels).predicted_delay;
      const double pamad = pamad_frequencies(w, channels).predicted_delay;
      EXPECT_LE(pamad - opt, scale * 0.08)
          << shape_name(shape) << " channels=" << channels;
    }
  }
}

TEST(Opt, ZeroDelayAtSufficientChannels) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 5, 100, 4, 2);
  EXPECT_DOUBLE_EQ(
      opt_frequencies(w, min_channels(w)).predicted_delay, 0.0);
}

TEST(Opt, SingleGroup) {
  const Workload w = make_workload({4}, {12});
  const OptResult r = opt_frequencies(w, 2);
  EXPECT_EQ(r.S, (std::vector<SlotCount>{1}));
}

TEST(Opt, PaperScaleTerminates) {
  // Full Figure-4 workload at an awkward channel count; must finish fast
  // and beat m-PB's frequencies.
  const Workload w = make_paper_workload(GroupSizeShape::kNormal);
  const OptResult r = opt_frequencies(w, 13);
  EXPECT_GT(r.evaluations, 0u);
  const std::vector<SlotCount> mpb = {128, 64, 32, 16, 8, 4, 2, 1};
  EXPECT_LT(r.predicted_delay, analytic_average_delay(w, mpb, 13));
}

TEST(Opt, UnconstrainedLowerBoundsLadder) {
  for (const GroupSizeShape shape : paper_shapes()) {
    const Workload w = make_paper_workload(shape, 6, 300, 4, 2);
    for (const SlotCount channels : {1, 4, 9}) {
      const double ladder = opt_frequencies(w, channels).predicted_delay;
      const double free_opt =
          opt_frequencies_unconstrained(w, channels).predicted_delay;
      EXPECT_LE(free_opt, ladder + 1e-9)
          << shape_name(shape) << " channels=" << channels;
      // ...and the structured space is not far behind the true bound.
      EXPECT_LE(ladder, free_opt * 1.5 + 0.2)
          << shape_name(shape) << " channels=" << channels;
    }
  }
}

TEST(Opt, DeterministicAcrossThreadCounts) {
  // The parallel ladder search must be schedule-independent: the fixed task
  // decomposition, per-subtree budgets, and total-order merge guarantee the
  // same S, the same delay bit for bit, and the same evaluation count no
  // matter how many workers run.
  for (const GroupSizeShape shape : paper_shapes()) {
    const Workload w = make_paper_workload(shape);
    for (const SlotCount channels : {1, 13, 60}) {
      const OptResult one = opt_frequencies(w, channels, 1);
      for (const unsigned threads : {2u, 8u}) {
        const OptResult many = opt_frequencies(w, channels, threads);
        EXPECT_EQ(many.S, one.S)
            << shape_name(shape) << " channels=" << channels
            << " threads=" << threads;
        // Bitwise, not approximate: the merged result is the same leaf.
        EXPECT_EQ(many.predicted_delay, one.predicted_delay)
            << shape_name(shape) << " channels=" << channels
            << " threads=" << threads;
        EXPECT_EQ(many.evaluations, one.evaluations)
            << shape_name(shape) << " channels=" << channels
            << " threads=" << threads;
      }
    }
  }
}

TEST(Opt, ScheduleCarriesSearchResult) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const OptSchedule s = schedule_opt(w, 3);
  EXPECT_EQ(s.program.cycle_length(),
            major_cycle(w, s.search.S, 3));
  EXPECT_EQ(s.program.occupied(), total_slots(w, s.search.S));
}

}  // namespace
}  // namespace tcsa
