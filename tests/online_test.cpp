// Tests for the adaptive expected-time loop (src/online).
#include <gtest/gtest.h>

#include <stdexcept>

#include "online/adaptive.hpp"
#include "online/estimator.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

// ---------------------------------------------------------------- estimator

TEST(Estimator, FallbackBeforeSamples) {
  const ToleranceEstimator e(3);
  EXPECT_EQ(e.estimate(0, 0.1, 42), 42);
  EXPECT_EQ(e.sample_count(0), 0u);
}

TEST(Estimator, QuantileOfWindow) {
  ToleranceEstimator e(1);
  for (SlotCount t = 1; t <= 100; ++t) e.add_sample(0, t);
  EXPECT_EQ(e.estimate(0, 0.0, 1), 1);
  EXPECT_EQ(e.estimate(0, 1.0, 1), 100);
  // 10th percentile of 1..100 ~ 10.
  EXPECT_NEAR(static_cast<double>(e.estimate(0, 0.1, 1)), 10.0, 2.0);
}

TEST(Estimator, WindowEvictsOldest) {
  ToleranceEstimator e(1, 4);
  for (const SlotCount t : {100, 100, 100, 100}) e.add_sample(0, t);
  EXPECT_EQ(e.estimate(0, 0.0, 1), 100);
  // Four fresh small samples fully replace the old regime.
  for (const SlotCount t : {5, 5, 5, 5}) e.add_sample(0, t);
  EXPECT_EQ(e.estimate(0, 1.0, 1), 5);
  EXPECT_EQ(e.sample_count(0), 4u);
}

TEST(Estimator, ClassesAreIndependent) {
  ToleranceEstimator e(2);
  e.add_sample(0, 10);
  e.add_sample(1, 200);
  EXPECT_EQ(e.estimate(0, 0.5, 1), 10);
  EXPECT_EQ(e.estimate(1, 0.5, 1), 200);
}

TEST(Estimator, RejectsBadInput) {
  ToleranceEstimator e(2);
  EXPECT_THROW(e.add_sample(2, 10), std::invalid_argument);
  EXPECT_THROW(e.add_sample(0, 0), std::invalid_argument);
  EXPECT_THROW(e.estimate(0, 1.5, 1), std::invalid_argument);
  EXPECT_THROW(ToleranceEstimator(0), std::invalid_argument);
  EXPECT_THROW(ToleranceEstimator(1, 0), std::invalid_argument);
}

// ----------------------------------------------------------------- adaptive

Workload small_workload() { return make_workload({4, 16, 64}, {10, 20, 30}); }

std::vector<DriftPhase> steady_phases() {
  return {DriftPhase{4000.0, {4, 16, 64}}};
}

TEST(Adaptive, RunsAndAggregates) {
  AdaptiveConfig config;
  config.channels = 4;
  const AdaptiveResult r =
      simulate_adaptive(small_workload(), steady_phases(), config);
  EXPECT_GT(r.requests, 0u);
  EXPECT_FALSE(r.epochs.empty());
  EXPECT_GE(r.overall_miss_rate, 0.0);
  EXPECT_LE(r.overall_miss_rate, 1.0);
  std::uint64_t epoch_requests = 0;
  for (const EpochStats& e : r.epochs) epoch_requests += e.requests;
  EXPECT_EQ(epoch_requests, r.requests);
}

TEST(Adaptive, DeterministicInSeed) {
  AdaptiveConfig config;
  const AdaptiveResult a =
      simulate_adaptive(small_workload(), steady_phases(), config);
  const AdaptiveResult b =
      simulate_adaptive(small_workload(), steady_phases(), config);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_DOUBLE_EQ(a.overall_miss_rate, b.overall_miss_rate);
}

TEST(Adaptive, SteadyStateWithAmpleChannelsHasFewMisses) {
  AdaptiveConfig config;
  config.channels = 12;  // comfortably above the bound
  config.adapt = false;
  const AdaptiveResult r =
      simulate_adaptive(small_workload(), steady_phases(), config);
  // Schedule meets the announced times; only clients whose personal
  // tolerance jitters below the class mean can miss.
  EXPECT_LT(r.overall_miss_rate, 0.35);
}

TEST(Adaptive, AdaptationBeatsStaticUnderTighteningDrift) {
  // Clients tighten mid-run (rush hour): the static server keeps missing;
  // the adaptive one reschedules to the learned tolerances.
  const std::vector<DriftPhase> drift = {
      DriftPhase{2000.0, {16, 64, 128}},   // relaxed morning
      DriftPhase{10000.0, {4, 16, 64}},    // rush hour: everything tighter
  };
  const Workload initial = make_workload({16, 64, 128}, {10, 20, 30});
  AdaptiveConfig config;
  config.channels = 12;
  config.reschedule_period = 500.0;

  AdaptiveConfig frozen = config;
  frozen.adapt = false;
  const AdaptiveResult adaptive = simulate_adaptive(initial, drift, config);
  const AdaptiveResult static_run = simulate_adaptive(initial, drift, frozen);
  EXPECT_LT(adaptive.overall_miss_rate, static_run.overall_miss_rate);
  EXPECT_GT(adaptive.reschedules, 0u);
  EXPECT_EQ(static_run.reschedules, 0u);
}

TEST(Adaptive, RelaxingDriftFreesBandwidthWithoutExtraMisses) {
  const std::vector<DriftPhase> drift = {
      DriftPhase{2000.0, {4, 16, 64}},
      DriftPhase{8000.0, {16, 64, 256}},  // everything relaxes
  };
  const Workload initial = small_workload();
  AdaptiveConfig config;
  config.channels = 8;
  const AdaptiveResult r = simulate_adaptive(initial, drift, config);
  // Late epochs should not be worse than the tight early ones.
  const EpochStats& early = r.epochs.front();
  const EpochStats& late = r.epochs.back();
  EXPECT_LE(late.miss_rate, early.miss_rate + 0.1);
}

TEST(Adaptive, EpochBoundariesFollowReschedulePeriod) {
  AdaptiveConfig config;
  config.reschedule_period = 1000.0;
  const AdaptiveResult r =
      simulate_adaptive(small_workload(), steady_phases(), config);
  ASSERT_GE(r.epochs.size(), 4u);
  EXPECT_DOUBLE_EQ(r.epochs[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(r.epochs[0].end, 1000.0);
  EXPECT_DOUBLE_EQ(r.epochs[1].end, 2000.0);
  EXPECT_DOUBLE_EQ(r.epochs.back().end, 4000.0);
}

TEST(Adaptive, RejectsBadConfig) {
  const Workload w = small_workload();
  AdaptiveConfig config;
  EXPECT_THROW(simulate_adaptive(w, {}, config), std::invalid_argument);
  EXPECT_THROW(simulate_adaptive(w, {DriftPhase{100.0, {4, 16}}}, config),
               std::invalid_argument);
  EXPECT_THROW(
      simulate_adaptive(w, {DriftPhase{100.0, {4, 16, 0}}}, config),
      std::invalid_argument);
  const std::vector<DriftPhase> backwards = {DriftPhase{100.0, {4, 16, 64}},
                                             DriftPhase{50.0, {4, 16, 64}}};
  EXPECT_THROW(simulate_adaptive(w, backwards, config),
               std::invalid_argument);
  AdaptiveConfig bad = config;
  bad.channels = 0;
  EXPECT_THROW(simulate_adaptive(w, steady_phases(), bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace tcsa
