// serve_e2e_test.cpp — ISSUE acceptance: fork the real `tcsactl serve`,
// tune in with the real `tcsactl tune --json`, and prove over actual
// sockets and processes that the broadcast meets every deadline, survives a
// hot swap from `tcsactl swap`, and leaves mergeable obs artifacts behind.
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "model/serialize.hpp"
#include "model/workload.hpp"
#include "obs/artifact.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/subprocess.hpp"

#ifndef TCSACTL_PATH
#error "serve_e2e_test requires -DTCSACTL_PATH=\"...\" from CMake"
#endif

using namespace tcsa;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

class ServeE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path(testing::TempDir()) /
            ("tcsa_serve_e2e_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(root_);
    {
      std::ofstream out(workload_path());
      save_workload(out, make_workload({2, 4, 8}, {3, 5, 3}));
    }
    {
      std::ofstream out(next_workload_path());
      save_workload(out, make_workload({2, 4, 8}, {3, 5, 4}));
    }
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  std::string path(const char* leaf) const { return (root_ / leaf).string(); }
  std::string workload_path() const { return path("workload.txt"); }
  std::string next_workload_path() const { return path("next.txt"); }

  /// Forks `tcsactl serve` and blocks until its --port-file appears.
  Subprocess spawn_serve(std::vector<std::string> extra_flags) {
    std::vector<std::string> argv = {
        TCSACTL_PATH, "serve",       "--workload",  workload_path(),
        "--port",     "0",           "--port-file", path("port.txt"),
        "--slot-us",  "300",         "--slots",     "6000"};
    argv.insert(argv.end(), extra_flags.begin(), extra_flags.end());
    SpawnOptions options;
    options.stdout_path = path("serve.stdout.txt");
    options.stderr_path = path("serve.stderr.txt");
    Subprocess serve = Subprocess::spawn(argv, options);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    std::string contents;
    while (std::chrono::steady_clock::now() < deadline) {
      if (std::filesystem::exists(path("port.txt"))) {
        contents = slurp(path("port.txt"));
        if (!contents.empty() && contents.back() == '\n') break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    port_ = contents.empty() ? 0 : std::stoi(contents);
    EXPECT_GT(port_, 0) << "server never wrote its port file; stderr:\n"
                        << slurp(path("serve.stderr.txt"));
    return serve;
  }

  int run_tune(const char* slots, const std::string& json_out) {
    SpawnOptions options;
    options.stdout_path = json_out;
    options.stderr_path = path("tune.stderr.txt");
    return run_command({TCSACTL_PATH, "tune", "--port", std::to_string(port_),
                        "--slots", slots, "--json"},
                       options);
  }

  std::filesystem::path root_;
  int port_ = 0;
};

TEST_F(ServeE2E, TuneObservesZeroMissesAndSwapActivatesLive) {
  Subprocess serve = spawn_serve({});

  // First audience member: 300 slots of generation 1, not one late page.
  ASSERT_EQ(run_tune("300", path("tune1.json")), 0)
      << slurp(path("tune.stderr.txt"));
  const obs::JsonValue first = obs::json_parse(slurp(path("tune1.json")));
  EXPECT_GE(first.at("slots").expect_uint("slots"), 300u);
  EXPECT_EQ(first.at("deadline_misses").expect_uint("deadline_misses"), 0u);
  EXPECT_EQ(first.at("generation").expect_uint("generation"), 1u);
  EXPECT_EQ(first.at("swaps_observed").expect_uint("swaps_observed"), 0u);
  const obs::JsonValue& groups = first.at("groups").expect_array("groups");
  ASSERT_EQ(groups.array.size(), 3u);
  for (const obs::JsonValue& group : groups.array) {
    const std::uint64_t t = group.at("expected_time").expect_uint("t");
    EXPECT_LE(group.at("max_gap").expect_uint("max_gap"), t);
    EXPECT_EQ(group.at("misses").expect_uint("misses"), 0u);
    EXPECT_GT(group.at("receptions").expect_uint("receptions"), 0u);
  }

  // Hot swap from a second process while the program stays on air.
  SpawnOptions swap_options;
  swap_options.stdout_path = path("swap.stdout.txt");
  swap_options.stderr_path = path("swap.stderr.txt");
  ASSERT_EQ(run_command({TCSACTL_PATH, "swap", "--port",
                         std::to_string(port_), "--workload",
                         next_workload_path()},
                        swap_options),
            0)
      << slurp(path("swap.stderr.txt"));
  EXPECT_NE(slurp(path("swap.stdout.txt")).find("swap accepted: generation 2"),
            std::string::npos);

  // Second audience member tunes in after activation: generation 2, still
  // zero misses, and the grown group now has four pages on air.
  ASSERT_EQ(run_tune("120", path("tune2.json")), 0)
      << slurp(path("tune.stderr.txt"));
  const obs::JsonValue second = obs::json_parse(slurp(path("tune2.json")));
  EXPECT_EQ(second.at("deadline_misses").expect_uint("deadline_misses"), 0u);
  EXPECT_EQ(second.at("generation").expect_uint("generation"), 2u);

  EXPECT_EQ(serve.wait(), 0) << slurp(path("serve.stderr.txt"));
  const std::string serve_log = slurp(path("serve.stderr.txt"));
  EXPECT_NE(serve_log.find("on air at"), std::string::npos);
  EXPECT_NE(serve_log.find("off air after 6000 slots (generation 2"),
            std::string::npos);
}

// The sharded server honors the same wire contract the single-loop one
// does — a real tune client sees zero misses at --loops 4 — and the load
// generator drives it from a separate process, leaving a diffable report.
TEST_F(ServeE2E, FourLoopServeMeetsDeadlinesAndLoadgenReports) {
  // Longer life (12000 slots * 300us = 3.6s) so the tune run and the
  // loadgen window both finish while the program is still on air.
  Subprocess serve = spawn_serve({"--loops", "4", "--slots", "12000"});

  ASSERT_EQ(run_tune("300", path("tune.json")), 0)
      << slurp(path("tune.stderr.txt"));
  const obs::JsonValue tuned = obs::json_parse(slurp(path("tune.json")));
  EXPECT_EQ(tuned.at("deadline_misses").expect_uint("deadline_misses"), 0u);
  EXPECT_EQ(tuned.at("generation").expect_uint("generation"), 1u);

  SpawnOptions load_options;
  load_options.stdout_path = path("loadgen.stdout.txt");
  load_options.stderr_path = path("loadgen.stderr.txt");
  ASSERT_EQ(run_command({TCSACTL_PATH, "loadgen", "--port",
                         std::to_string(port_), "--sessions", "200",
                         "--threads", "2", "--duration-ms", "400",
                         "--json-out", path("loadgen.json")},
                        load_options),
            0)
      << slurp(path("loadgen.stderr.txt"));
  const obs::MetricsSnapshot report =
      obs::snapshot_from_json(slurp(path("loadgen.json")));
  EXPECT_EQ(report.counter_value("tcsa_loadgen_sessions_total"), 200u);
  EXPECT_EQ(report.counter_value("tcsa_loadgen_connect_failures_total"), 0u);
  EXPECT_EQ(report.counter_value("tcsa_loadgen_early_closes_total"), 0u);
  EXPECT_GT(report.counter_value("tcsa_loadgen_pages_total"), 0u);

  EXPECT_EQ(serve.wait(), 0) << slurp(path("serve.stderr.txt"));
  const std::string serve_log = slurp(path("serve.stderr.txt"));
  EXPECT_NE(serve_log.find("4 loops"), std::string::npos);
  EXPECT_NE(serve_log.find("off air after 12000 slots"), std::string::npos);
}

#if TCSA_OBS_COMPILED
TEST_F(ServeE2E, WritesMergeableObsArtifacts) {
  const std::string art_dir = path("artifacts");
  Subprocess serve = spawn_serve({"--metrics-out", path("metrics.json"),
                                  "--out-dir", art_dir, "--run-id",
                                  "serve-e2e"});
  ASSERT_EQ(run_tune("200", path("tune.json")), 0)
      << slurp(path("tune.stderr.txt"));
  EXPECT_EQ(serve.wait(), 0) << slurp(path("serve.stderr.txt"));

  // --metrics-out snapshot: the tcsa_server_* family is present and sane.
  const obs::MetricsSnapshot direct =
      obs::snapshot_from_json(slurp(path("metrics.json")));
  EXPECT_EQ(direct.counter_value("tcsa_server_slots_aired_total"), 6000u);
  EXPECT_GE(direct.counter_value("tcsa_server_sessions_opened_total"), 1u);
  EXPECT_GT(direct.counter_value("tcsa_server_frames_sent_total"), 0u);
  EXPECT_GT(direct.counter_value("tcsa_server_bytes_sent_total"), 0u);
  EXPECT_GE(direct.counter_value("tcsa_server_tunes_total"), 1u);
  const obs::HistogramSnapshot* lag =
      direct.histogram("tcsa_server_slot_lag_us");
  ASSERT_NE(lag, nullptr);
  EXPECT_EQ(lag->total(), 6000u);

  // The --out-dir artifact set is a well-formed single-shard run …
  const obs::RunManifest manifest =
      obs::manifest_from_json(slurp(art_dir + "/serve.manifest.json"));
  EXPECT_EQ(manifest.run_id, "serve-e2e");
  EXPECT_EQ(manifest.command, "serve");
  EXPECT_EQ(manifest.shard_count, 1);
  EXPECT_FALSE(manifest.config_digest.empty());

  // … that `tcsactl obs merge` accepts like any sweep run.
  SpawnOptions merge_options;
  merge_options.stdout_path = path("merge.stdout.txt");
  merge_options.stderr_path = path("merge.stderr.txt");
  ASSERT_EQ(run_command({TCSACTL_PATH, "obs", "merge", "--dir", art_dir},
                        merge_options),
            0)
      << slurp(path("merge.stderr.txt"));
  const obs::MetricsSnapshot merged =
      obs::snapshot_from_json(slurp(art_dir + "/merged.metrics.json"));
  EXPECT_EQ(merged.counter_value("tcsa_server_slots_aired_total"), 6000u);

  // The trace holds the server's span families.
  const obs::JsonValue trace =
      obs::json_parse(slurp(art_dir + "/serve.trace.json"));
  bool saw_slot_span = false;
  for (const obs::JsonValue& e : trace.at("traceEvents").array)
    if (const obs::JsonValue* name = e.find("name");
        name && name->string == "server.slot")
      saw_slot_span = true;
  EXPECT_TRUE(saw_slot_span);
}
#endif  // TCSA_OBS_COMPILED

}  // namespace
