// serve_e2e_test.cpp — ISSUE acceptance: fork the real `tcsactl serve`,
// tune in with the real `tcsactl tune --json`, and prove over actual
// sockets and processes that the broadcast meets every deadline, survives a
// hot swap from `tcsactl swap`, and leaves mergeable obs artifacts behind.
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "model/serialize.hpp"
#include "model/workload.hpp"
#include "net/http_admin.hpp"
#include "obs/artifact.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/subprocess.hpp"

#ifndef TCSACTL_PATH
#error "serve_e2e_test requires -DTCSACTL_PATH=\"...\" from CMake"
#endif

using namespace tcsa;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

class ServeE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path(testing::TempDir()) /
            ("tcsa_serve_e2e_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(root_);
    {
      std::ofstream out(workload_path());
      save_workload(out, make_workload({2, 4, 8}, {3, 5, 3}));
    }
    {
      std::ofstream out(next_workload_path());
      save_workload(out, make_workload({2, 4, 8}, {3, 5, 4}));
    }
  }

  void TearDown() override {
    // A failed test keeps its scene — logs, artifacts, flight dumps — so
    // CI can upload the directory (see the if: failure() step in ci.yml).
    if (::testing::Test::HasFailure()) return;
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  std::string path(const char* leaf) const { return (root_ / leaf).string(); }
  std::string workload_path() const { return path("workload.txt"); }
  std::string next_workload_path() const { return path("next.txt"); }

  /// Blocks until a --port-file/--admin-port-file appears (newline-
  /// terminated), returning the port or 0 on timeout.
  int wait_for_port(const std::string& file) const {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (std::chrono::steady_clock::now() < deadline) {
      if (std::filesystem::exists(file)) {
        const std::string contents = slurp(file);
        if (!contents.empty() && contents.back() == '\n')
          return std::stoi(contents);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return 0;
  }

  /// Forks `tcsactl serve` and blocks until its --port-file appears.
  Subprocess spawn_serve(std::vector<std::string> extra_flags) {
    std::vector<std::string> argv = {
        TCSACTL_PATH, "serve",       "--workload",  workload_path(),
        "--port",     "0",           "--port-file", path("port.txt"),
        "--slot-us",  "300",         "--slots",     "6000"};
    argv.insert(argv.end(), extra_flags.begin(), extra_flags.end());
    SpawnOptions options;
    options.stdout_path = path("serve.stdout.txt");
    options.stderr_path = path("serve.stderr.txt");
    Subprocess serve = Subprocess::spawn(argv, options);
    port_ = wait_for_port(path("port.txt"));
    EXPECT_GT(port_, 0) << "server never wrote its port file; stderr:\n"
                        << slurp(path("serve.stderr.txt"));
    return serve;
  }

  int run_tune(const char* slots, const std::string& json_out) {
    SpawnOptions options;
    options.stdout_path = json_out;
    options.stderr_path = path("tune.stderr.txt");
    return run_command({TCSACTL_PATH, "tune", "--port", std::to_string(port_),
                        "--slots", slots, "--json"},
                       options);
  }

  std::filesystem::path root_;
  int port_ = 0;
};

TEST_F(ServeE2E, TuneObservesZeroMissesAndSwapActivatesLive) {
  Subprocess serve = spawn_serve({});

  // First audience member: 300 slots of generation 1, not one late page.
  ASSERT_EQ(run_tune("300", path("tune1.json")), 0)
      << slurp(path("tune.stderr.txt"));
  const obs::JsonValue first = obs::json_parse(slurp(path("tune1.json")));
  EXPECT_GE(first.at("slots").expect_uint("slots"), 300u);
  EXPECT_EQ(first.at("deadline_misses").expect_uint("deadline_misses"), 0u);
  EXPECT_EQ(first.at("generation").expect_uint("generation"), 1u);
  EXPECT_EQ(first.at("swaps_observed").expect_uint("swaps_observed"), 0u);
  const obs::JsonValue& groups = first.at("groups").expect_array("groups");
  ASSERT_EQ(groups.array.size(), 3u);
  for (const obs::JsonValue& group : groups.array) {
    const std::uint64_t t = group.at("expected_time").expect_uint("t");
    EXPECT_LE(group.at("max_gap").expect_uint("max_gap"), t);
    EXPECT_EQ(group.at("misses").expect_uint("misses"), 0u);
    EXPECT_GT(group.at("receptions").expect_uint("receptions"), 0u);
  }

  // Hot swap from a second process while the program stays on air.
  SpawnOptions swap_options;
  swap_options.stdout_path = path("swap.stdout.txt");
  swap_options.stderr_path = path("swap.stderr.txt");
  ASSERT_EQ(run_command({TCSACTL_PATH, "swap", "--port",
                         std::to_string(port_), "--workload",
                         next_workload_path()},
                        swap_options),
            0)
      << slurp(path("swap.stderr.txt"));
  EXPECT_NE(slurp(path("swap.stdout.txt")).find("swap accepted: generation 2"),
            std::string::npos);

  // Second audience member tunes in after activation: generation 2, still
  // zero misses, and the grown group now has four pages on air.
  ASSERT_EQ(run_tune("120", path("tune2.json")), 0)
      << slurp(path("tune.stderr.txt"));
  const obs::JsonValue second = obs::json_parse(slurp(path("tune2.json")));
  EXPECT_EQ(second.at("deadline_misses").expect_uint("deadline_misses"), 0u);
  EXPECT_EQ(second.at("generation").expect_uint("generation"), 2u);

  EXPECT_EQ(serve.wait(), 0) << slurp(path("serve.stderr.txt"));
  const std::string serve_log = slurp(path("serve.stderr.txt"));
  EXPECT_NE(serve_log.find("on air at"), std::string::npos);
  EXPECT_NE(serve_log.find("off air after 6000 slots (generation 2"),
            std::string::npos);
}

// The sharded server honors the same wire contract the single-loop one
// does — a real tune client sees zero misses at --loops 4 — and the load
// generator drives it from a separate process, leaving a diffable report.
TEST_F(ServeE2E, FourLoopServeMeetsDeadlinesAndLoadgenReports) {
  // Longer life (12000 slots * 300us = 3.6s) so the tune run and the
  // loadgen window both finish while the program is still on air.
  Subprocess serve = spawn_serve({"--loops", "4", "--slots", "12000"});

  ASSERT_EQ(run_tune("300", path("tune.json")), 0)
      << slurp(path("tune.stderr.txt"));
  const obs::JsonValue tuned = obs::json_parse(slurp(path("tune.json")));
  EXPECT_EQ(tuned.at("deadline_misses").expect_uint("deadline_misses"), 0u);
  EXPECT_EQ(tuned.at("generation").expect_uint("generation"), 1u);

  SpawnOptions load_options;
  load_options.stdout_path = path("loadgen.stdout.txt");
  load_options.stderr_path = path("loadgen.stderr.txt");
  ASSERT_EQ(run_command({TCSACTL_PATH, "loadgen", "--port",
                         std::to_string(port_), "--sessions", "200",
                         "--threads", "2", "--duration-ms", "400",
                         "--json-out", path("loadgen.json")},
                        load_options),
            0)
      << slurp(path("loadgen.stderr.txt"));
  const obs::MetricsSnapshot report =
      obs::snapshot_from_json(slurp(path("loadgen.json")));
  EXPECT_EQ(report.counter_value("tcsa_loadgen_sessions_total"), 200u);
  EXPECT_EQ(report.counter_value("tcsa_loadgen_connect_failures_total"), 0u);
  EXPECT_EQ(report.counter_value("tcsa_loadgen_early_closes_total"), 0u);
  EXPECT_GT(report.counter_value("tcsa_loadgen_pages_total"), 0u);

  EXPECT_EQ(serve.wait(), 0) << slurp(path("serve.stderr.txt"));
  const std::string serve_log = slurp(path("serve.stderr.txt"));
  EXPECT_NE(serve_log.find("4 loops"), std::string::npos);
  EXPECT_NE(serve_log.find("off air after 12000 slots"), std::string::npos);
}

#if TCSA_OBS_COMPILED
TEST_F(ServeE2E, WritesMergeableObsArtifacts) {
  const std::string art_dir = path("artifacts");
  Subprocess serve = spawn_serve({"--metrics-out", path("metrics.json"),
                                  "--out-dir", art_dir, "--run-id",
                                  "serve-e2e"});
  ASSERT_EQ(run_tune("200", path("tune.json")), 0)
      << slurp(path("tune.stderr.txt"));
  EXPECT_EQ(serve.wait(), 0) << slurp(path("serve.stderr.txt"));

  // --metrics-out snapshot: the tcsa_server_* family is present and sane.
  const obs::MetricsSnapshot direct =
      obs::snapshot_from_json(slurp(path("metrics.json")));
  EXPECT_EQ(direct.counter_value("tcsa_server_slots_aired_total"), 6000u);
  EXPECT_GE(direct.counter_value("tcsa_server_sessions_opened_total"), 1u);
  EXPECT_GT(direct.counter_value("tcsa_server_frames_sent_total"), 0u);
  EXPECT_GT(direct.counter_value("tcsa_server_bytes_sent_total"), 0u);
  EXPECT_GE(direct.counter_value("tcsa_server_tunes_total"), 1u);
  const obs::HistogramSnapshot* lag =
      direct.histogram("tcsa_server_slot_lag_us");
  ASSERT_NE(lag, nullptr);
  EXPECT_EQ(lag->total(), 6000u);

  // The --out-dir artifact set is a well-formed single-shard run …
  const obs::RunManifest manifest =
      obs::manifest_from_json(slurp(art_dir + "/serve.manifest.json"));
  EXPECT_EQ(manifest.run_id, "serve-e2e");
  EXPECT_EQ(manifest.command, "serve");
  EXPECT_EQ(manifest.shard_count, 1);
  EXPECT_FALSE(manifest.config_digest.empty());

  // … that `tcsactl obs merge` accepts like any sweep run.
  SpawnOptions merge_options;
  merge_options.stdout_path = path("merge.stdout.txt");
  merge_options.stderr_path = path("merge.stderr.txt");
  ASSERT_EQ(run_command({TCSACTL_PATH, "obs", "merge", "--dir", art_dir},
                        merge_options),
            0)
      << slurp(path("merge.stderr.txt"));
  const obs::MetricsSnapshot merged =
      obs::snapshot_from_json(slurp(art_dir + "/merged.metrics.json"));
  EXPECT_EQ(merged.counter_value("tcsa_server_slots_aired_total"), 6000u);

  // The trace holds the server's span families.
  const obs::JsonValue trace =
      obs::json_parse(slurp(art_dir + "/serve.trace.json"));
  bool saw_slot_span = false;
  for (const obs::JsonValue& e : trace.at("traceEvents").array)
    if (const obs::JsonValue* name = e.find("name");
        name && name->string == "server.slot")
      saw_slot_span = true;
  EXPECT_TRUE(saw_slot_span);
}
#endif  // TCSA_OBS_COMPILED

// ---------------------------------------------------------- admin plane

namespace {

/// TSan serializes every connect/accept enough that full-scale load would
/// blow past the test timeout; scale the audience down under sanitizers.
#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

}  // namespace

#if TCSA_OBS_COMPILED
// ISSUE acceptance: a 4-loop serve with --admin-port answers /metrics,
// /healthz, and /slots while a 2k-session loadgen hammers it, without
// breaching the slot-lag SLO — and `tcsactl stat` renders the scrape both
// as a table and as artifact-pipeline JSON accepted by `obs diff`.
TEST_F(ServeE2E, AdminPlaneAnswersUnderLoadWithoutBreachingSlo) {
  // Scale the audience to the machine: the full 2k-session fleet needs
  // real cores — on a starved box (or under TSan) the loadgen itself would
  // steal the airing loop's CPU and manufacture lag the server is not
  // responsible for.
  // The SLO threshold scales with the hardware too: when the whole test —
  // server, loadgen, and scraper — shares one or two cores, the airing
  // loop can legitimately sit preempted for hundreds of milliseconds, so
  // only a pathological stall should count as a breach there.
  const unsigned hw = std::thread::hardware_concurrency();
  const bool full_scale = !kTsan && hw >= 8;
  const unsigned sessions =
      kTsan ? 128 : full_scale ? 2000 : hw >= 4 ? 800 : 200;
  const unsigned load_threads = !kTsan && hw >= 4 ? 4 : 2;
  const long slo_us = full_scale ? 250000 : 2000000;
  // TSan serializes the instrumented airing loop enough that a 300us slot
  // saturates loop 0; slow the clock down so admin scrapes get loop time.
  const char* slot_us = kTsan ? "3000" : "300";
  const int scrape_timeout_ms = kTsan ? 60000 : 5000;
  // 100000 slots * 300us = 30s of air time: enough that the program is
  // still broadcasting when the scrapes run even if a loaded CI box slows
  // the ramp; the test SIGTERMs the server the moment it is done.
  Subprocess serve = spawn_serve(
      {"--loops", "4", "--slots", "100000", "--slot-us", slot_us,
       "--admin-port", "0", "--admin-port-file", path("admin.txt"),
       "--slo-us", std::to_string(slo_us), "--slo-window", "64",
       "--timeline-slots", "512"});
  const int admin_port = wait_for_port(path("admin.txt"));
  ASSERT_GT(admin_port, 0) << slurp(path("serve.stderr.txt"));

  // Background audience: scrapes below happen while this is running.
  SpawnOptions load_options;
  load_options.stdout_path = path("loadgen.stdout.txt");
  load_options.stderr_path = path("loadgen.stderr.txt");
  Subprocess loadgen = Subprocess::spawn(
      {TCSACTL_PATH, "loadgen", "--port", std::to_string(port_),
       "--sessions", std::to_string(sessions), "--threads",
       std::to_string(load_threads), "--duration-ms", "5000", "--json-out",
       path("loadgen.json")},
      load_options);

  // /healthz: liveness + the watchdog's decayed percentiles. Poll until
  // the loadgen's sessions are visible so the scrape is genuinely under
  // load (connect ramp-up takes a while on small machines).
  obs::JsonValue health_doc;
  const auto ramp_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (true) {
    const net::HttpResponse health =
        net::http_get("127.0.0.1", static_cast<std::uint16_t>(admin_port),
                      "/healthz", scrape_timeout_ms);
    ASSERT_EQ(health.status, 200) << health.body;
    health_doc = obs::json_parse(health.body);
    if (health_doc.at("sessions").number > 0.0 &&
        health_doc.at("slots_aired").number > 0.0)
      break;
    ASSERT_LT(std::chrono::steady_clock::now(), ramp_deadline)
        << "no sessions appeared; loadgen stderr:\n"
        << slurp(path("loadgen.stderr.txt"));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(health_doc.at("status").string, "ok");
  EXPECT_EQ(health_doc.at("loops").number, 4.0);
  EXPECT_GT(health_doc.at("sessions").number, 0.0);
  EXPECT_EQ(health_doc.at("slo_breaches").number, 0.0);

  // /metrics: Prometheus exposition with the telemetry families present.
  const net::HttpResponse prom =
      net::http_get("127.0.0.1", static_cast<std::uint16_t>(admin_port),
                    "/metrics", scrape_timeout_ms);
  ASSERT_EQ(prom.status, 200);
  EXPECT_NE(prom.body.find("# TYPE tcsa_server_slots_aired_total counter"),
            std::string::npos);
  EXPECT_NE(prom.body.find("tcsa_slo_breach_total 0"), std::string::npos);
  EXPECT_NE(prom.body.find("tcsa_build_info{git_describe=\""),
            std::string::npos);
  EXPECT_NE(prom.body.find("tcsa_uptime_seconds"), std::string::npos);

  // /metrics.json: the strict artifact importer accepts a live scrape.
  const net::HttpResponse json_scrape =
      net::http_get("127.0.0.1", static_cast<std::uint16_t>(admin_port),
                    "/metrics.json", scrape_timeout_ms);
  ASSERT_EQ(json_scrape.status, 200);
  const obs::MetricsSnapshot live = obs::snapshot_from_json(json_scrape.body);
  EXPECT_GT(live.counter_value("tcsa_server_slots_aired_total"), 0u);
  EXPECT_GT(live.counter_value("tcsa_server_frames_sent_total"), 0u);
  EXPECT_EQ(live.counter_value("tcsa_slo_breach_total"), 0u);
  const obs::GaugeSnapshot* build = live.gauge("tcsa_build_info");
  ASSERT_NE(build, nullptr);
  EXPECT_NE(build->labels.find("loops=\"4\""), std::string::npos);
  EXPECT_NE(build->labels.find("obs=\"on\""), std::string::npos);

  // /slots: the airing timeline, newest records, every one on schedule.
  const net::HttpResponse slots =
      net::http_get("127.0.0.1", static_cast<std::uint16_t>(admin_port),
                    "/slots?max=64", scrape_timeout_ms);
  ASSERT_EQ(slots.status, 200);
  const obs::JsonValue slots_doc = obs::json_parse(slots.body);
  EXPECT_EQ(slots_doc.at("capacity").number, 512.0);
  const obs::JsonValue& records = slots_doc.at("slots").expect_array("slots");
  ASSERT_FALSE(records.array.empty());
  EXPECT_LE(records.array.size(), 64u);
  bool any_with_audience = false;
  for (const obs::JsonValue& rec : records.array) {
    EXPECT_LT(rec.at("lag_us").number, static_cast<double>(slo_us));
    if (rec.at("sessions").number > 0.0) any_with_audience = true;
  }
  EXPECT_TRUE(any_with_audience);

  // `tcsactl stat` renders the same scrape as a one-screen table …
  SpawnOptions stat_options;
  stat_options.stdout_path = path("stat.txt");
  stat_options.stderr_path = path("stat.stderr.txt");
  ASSERT_EQ(run_command({TCSACTL_PATH, "stat",
                         "127.0.0.1:" + std::to_string(admin_port)},
                        stat_options),
            0)
      << slurp(path("stat.stderr.txt"));
  const std::string table = slurp(path("stat.txt"));
  EXPECT_NE(table.find("slots aired"), std::string::npos);
  EXPECT_NE(table.find("slot lag p99"), std::string::npos);

  // … and as JSON that the obs diff gate accepts against an SLO baseline.
  {
    std::ofstream base(path("slo_base.json"));
    base << "{\"counters\": {\"tcsa_slo_breach_total\": 0}, "
            "\"gauges\": {}, \"histograms\": {}}\n";
  }
  SpawnOptions stat_json_options;
  stat_json_options.stdout_path = path("live.json");
  stat_json_options.stderr_path = path("stat_json.stderr.txt");
  ASSERT_EQ(run_command({TCSACTL_PATH, "stat",
                         "127.0.0.1:" + std::to_string(admin_port),
                         "--json"},
                        stat_json_options),
            0)
      << slurp(path("stat_json.stderr.txt"));
  SpawnOptions diff_options;
  diff_options.stdout_path = path("diff.stdout.txt");
  diff_options.stderr_path = path("diff.stderr.txt");
  EXPECT_EQ(run_command({TCSACTL_PATH, "obs", "diff", "--base",
                         path("slo_base.json"), "--current",
                         path("live.json")},
                        diff_options),
            0)
      << slurp(path("diff.stdout.txt")) << slurp(path("diff.stderr.txt"));

  EXPECT_EQ(loadgen.wait(), 0) << slurp(path("loadgen.stderr.txt"));
  // The program is still on air with ~30000 slots; end it early but
  // gracefully and let shutdown assertions live in the SIGTERM test.
  ::kill(static_cast<pid_t>(serve.pid()), SIGTERM);
  EXPECT_EQ(serve.wait(), 0) << slurp(path("serve.stderr.txt"));
}
#endif  // TCSA_OBS_COMPILED

// Satellite: SIGTERM lands on the self-pipe, the loop unwinds as if the
// program had ended, and --metrics-out still gets written.
TEST_F(ServeE2E, SigtermDrainsAndWritesMetricsArtifact) {
  Subprocess serve = spawn_serve(
      {"--slots", "2000000", "--metrics-out", path("metrics.json")});
  // Let it air a few hundred slots before pulling the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ASSERT_EQ(::kill(static_cast<pid_t>(serve.pid()), SIGTERM), 0);
  EXPECT_EQ(serve.wait(), 0) << slurp(path("serve.stderr.txt"));

  const std::string serve_log = slurp(path("serve.stderr.txt"));
  EXPECT_NE(serve_log.find("off air"), std::string::npos);
#if TCSA_OBS_COMPILED
  const obs::MetricsSnapshot snap =
      obs::snapshot_from_json(slurp(path("metrics.json")));
  EXPECT_GT(snap.counter_value("tcsa_server_slots_aired_total"), 0u);
  // SIGTERM cut the program short of its 2000000-slot schedule.
  EXPECT_LT(snap.counter_value("tcsa_server_slots_aired_total"), 2000000u);
#endif
}

#if !TCSA_OBS_COMPILED
// Obs-off contract: the admin plane still serves liveness, and /metrics
// fails loudly instead of returning an empty exposition.
TEST_F(ServeE2E, ObsOffHealthzServesAndMetricsReturns503) {
  Subprocess serve = spawn_serve(
      {"--admin-port", "0", "--admin-port-file", path("admin.txt")});
  const int admin_port = wait_for_port(path("admin.txt"));
  ASSERT_GT(admin_port, 0) << slurp(path("serve.stderr.txt"));

  const net::HttpResponse health =
      net::http_get("127.0.0.1", static_cast<std::uint16_t>(admin_port),
                    "/healthz");
  EXPECT_EQ(health.status, 200) << health.body;
  EXPECT_NE(health.body.find("\"status\": \"ok\""), std::string::npos);

  const net::HttpResponse prom =
      net::http_get("127.0.0.1", static_cast<std::uint16_t>(admin_port),
                    "/metrics");
  EXPECT_EQ(prom.status, 503);
  EXPECT_NE(prom.body.find("TCSA_OBS=OFF"), std::string::npos);

  ::kill(static_cast<pid_t>(serve.pid()), SIGTERM);
  EXPECT_EQ(serve.wait(), 0) << slurp(path("serve.stderr.txt"));
}
#endif  // !TCSA_OBS_COMPILED

}  // namespace
