// Tests for the hybrid broadcast/on-demand simulation (Section 1's
// motivation, experiment A4).
#include <gtest/gtest.h>

#include "core/channel_bound.hpp"
#include "core/mpb.hpp"
#include "core/pamad.hpp"
#include "core/susc.hpp"
#include "sim/hybrid.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

TEST(Hybrid, ValidProgramNeverPulls) {
  // Under SUSC every wait fits the deadline, so the uplink stays idle.
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram p = schedule_susc(w);
  HybridConfig config;
  config.horizon = 2000.0;
  const HybridResult r = simulate_hybrid(p, w, config);
  EXPECT_GT(r.total_requests, 0u);
  EXPECT_EQ(r.pulled, 0u);
  EXPECT_DOUBLE_EQ(r.pull_fraction, 0.0);
  EXPECT_EQ(r.broadcast_served, r.total_requests);
}

TEST(Hybrid, InsufficientChannelsPushLoadToUplink) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 6, 200, 4, 2);
  const PamadSchedule s = schedule_pamad(w, 2);  // far below the bound
  HybridConfig config;
  config.horizon = 3000.0;
  const HybridResult r = simulate_hybrid(s.program, w, config);
  EXPECT_GT(r.pulled, 0u);
  EXPECT_GT(r.pull_fraction, 0.0);
  EXPECT_LT(r.pull_fraction, 1.0);
}

TEST(Hybrid, PamadShieldsUplinkBetterThanMpb) {
  // The motivating claim: a scheduler that keeps broadcast waits inside
  // expected times protects on-demand quality of service.
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 6, 300, 4, 2);
  const SlotCount channels = min_channels(w) / 4;
  const PamadSchedule pamad = schedule_pamad(w, channels);
  const MpbSchedule mpb = schedule_mpb(w, channels);
  HybridConfig config;
  config.horizon = 4000.0;
  config.uplink_channels = 4;
  const HybridResult rp = simulate_hybrid(pamad.program, w, config);
  const HybridResult rm = simulate_hybrid(mpb.program, w, config);
  EXPECT_LT(rp.pull_fraction, rm.pull_fraction);
}

TEST(Hybrid, DeterministicInSeed) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 4, 50, 2, 2);
  const PamadSchedule s = schedule_pamad(w, 2);
  HybridConfig config;
  config.horizon = 1000.0;
  const HybridResult a = simulate_hybrid(s.program, w, config);
  const HybridResult b = simulate_hybrid(s.program, w, config);
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.pulled, b.pulled);
  EXPECT_DOUBLE_EQ(a.avg_broadcast_wait, b.avg_broadcast_wait);
}

TEST(Hybrid, ArrivalRateScalesRequests) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 4, 50, 2, 2);
  const PamadSchedule s = schedule_pamad(w, 2);
  HybridConfig slow, fast;
  slow.horizon = fast.horizon = 3000.0;
  slow.arrival_rate = 0.5;
  fast.arrival_rate = 4.0;
  const HybridResult rs = simulate_hybrid(s.program, w, slow);
  const HybridResult rf = simulate_hybrid(s.program, w, fast);
  EXPECT_GT(rf.total_requests, rs.total_requests * 4);
  EXPECT_NEAR(static_cast<double>(rs.total_requests) / slow.horizon, 0.5, 0.05);
}

TEST(Hybrid, FewUplinksCongestMore) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 6, 300, 4, 2);
  const PamadSchedule s = schedule_pamad(w, 2);
  HybridConfig narrow, wide;
  narrow.horizon = wide.horizon = 3000.0;
  narrow.arrival_rate = wide.arrival_rate = 4.0;
  narrow.uplink_channels = 1;
  wide.uplink_channels = 8;
  const HybridResult rn = simulate_hybrid(s.program, w, narrow);
  const HybridResult rw = simulate_hybrid(s.program, w, wide);
  EXPECT_GT(rn.avg_pull_response, rw.avg_pull_response);
}

TEST(Hybrid, RejectsBadConfig) {
  const Workload w = make_workload({2}, {1});
  BroadcastProgram p(1, 2);
  p.place(0, 0, 0);
  p.place(0, 1, 0);
  HybridConfig config;
  config.arrival_rate = 0.0;
  EXPECT_THROW(simulate_hybrid(p, w, config), std::invalid_argument);
  config.arrival_rate = 1.0;
  config.horizon = 0.0;
  EXPECT_THROW(simulate_hybrid(p, w, config), std::invalid_argument);
}

}  // namespace
}  // namespace tcsa
