// cli_test.cpp — pins the tcsactl exit-code contract through fork/exec:
// 0 on success, 1 on operational failure (e.g. connection refused), 2 on
// usage errors — with a usage hint on stderr for every usage error.
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/subprocess.hpp"

#ifndef TCSACTL_PATH
#error "cli_test requires -DTCSACTL_PATH=\"...\" from CMake"
#endif

namespace {

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

class CliContract : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(testing::TempDir()) /
           ("tcsa_cli_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Runs tcsactl with `args`; captures stderr for the usage assertions.
  int run(std::vector<std::string> args) {
    std::vector<std::string> argv = {TCSACTL_PATH};
    argv.insert(argv.end(), args.begin(), args.end());
    tcsa::SpawnOptions options;
    options.stdout_path = (dir_ / "stdout.txt").string();
    options.stderr_path = (dir_ / "stderr.txt").string();
    return tcsa::run_command(argv, options);
  }

  std::string stderr_text() { return slurp((dir_ / "stderr.txt").string()); }

  std::filesystem::path dir_;
};

TEST_F(CliContract, HelpAndSuccessExitZero) {
  EXPECT_EQ(run({"--help"}), 0);
  EXPECT_EQ(run({"serve", "--help"}), 0);
  EXPECT_EQ(run({"tune", "--help"}), 0);
  EXPECT_EQ(run({"swap", "--help"}), 0);
  EXPECT_EQ(run({"--cmd", "demo"}), 0);
}

TEST_F(CliContract, UnknownSubcommandExitsTwoWithUsageOnStderr) {
  EXPECT_EQ(run({"frobnicate"}), 2);
  const std::string err = stderr_text();
  EXPECT_NE(err.find("unknown subcommand: frobnicate"), std::string::npos);
  EXPECT_NE(err.find("usage:"), std::string::npos);
}

TEST_F(CliContract, UnknownCmdExitsTwoWithUsageOnStderr) {
  EXPECT_EQ(run({"--cmd", "frobnicate"}), 2);
  EXPECT_NE(stderr_text().find("usage:"), std::string::npos);
}

TEST_F(CliContract, MissingRequiredPortExitsTwoWithUsageOnStderr) {
  EXPECT_EQ(run({"tune"}), 2);
  std::string err = stderr_text();
  EXPECT_NE(err.find("--port PORT is required"), std::string::npos);
  EXPECT_NE(err.find("usage:"), std::string::npos);

  EXPECT_EQ(run({"swap"}), 2);
  err = stderr_text();
  EXPECT_NE(err.find("--port PORT is required"), std::string::npos);
  EXPECT_NE(err.find("usage:"), std::string::npos);
}

TEST_F(CliContract, UnknownFlagExitsTwoWithUsageOnStderr) {
  EXPECT_EQ(run({"serve", "--frobnicate", "1"}), 2);
  EXPECT_NE(stderr_text().find("usage:"), std::string::npos);
  EXPECT_EQ(run({"--cmd", "bound", "--frobnicate", "1"}), 2);
}

TEST_F(CliContract, InvalidFlagValuesExitTwo) {
  EXPECT_EQ(run({"serve", "--port", "70000"}), 2);       // out of range
  EXPECT_EQ(run({"tune", "--port", "1", "--channel", "64"}), 2);
}

TEST_F(CliContract, OperationalFailureExitsOne) {
  // Nothing listens on port 1: connection refused is an operational
  // failure (exit 1), not a usage error — the command line was fine.
  EXPECT_EQ(run({"tune", "--port", "1", "--timeout-ms", "2000"}), 1);
  EXPECT_EQ(stderr_text().find("usage:"), std::string::npos);
}

}  // namespace
