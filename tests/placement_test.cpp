// Tests for the Algorithm 4 even-spread placer and the first-fit ablation.
#include <gtest/gtest.h>

#include <vector>

#include "core/delay_model.hpp"
#include "core/placement.hpp"
#include "model/appearance_index.hpp"
#include "sim/broadcast_sim.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

TEST(Placement, CycleLengthMatchesEquation8) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const std::vector<SlotCount> S = {4, 2, 1};
  const PlacementResult r = place_even_spread(w, S, 3);
  EXPECT_EQ(r.program.cycle_length(), 9);  // ceil(25/3), paper Section 4.4
  EXPECT_EQ(r.program.channels(), 3);
}

TEST(Placement, EveryCopyPlaced) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const std::vector<SlotCount> S = {4, 2, 1};
  const PlacementResult r = place_even_spread(w, S, 3);
  EXPECT_EQ(r.program.occupied(), total_slots(w, S));  // 25
  const AppearanceIndex idx(r.program, w.total_pages());
  for (PageId page = 0; page < w.total_pages(); ++page) {
    const GroupId g = w.group_of(page);
    EXPECT_EQ(idx.count(page), S[static_cast<std::size_t>(g)])
        << "page " << page;
  }
}

TEST(Placement, PaperExampleHasNoWindowOverflows) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const std::vector<SlotCount> S = {4, 2, 1};
  EXPECT_EQ(place_even_spread(w, S, 3).window_overflows, 0);
}

TEST(Placement, SpacingNearIdeal) {
  // With even spread, each page's max gap stays within ~2x the ideal
  // spacing t_major / S_i (window granularity can double it locally).
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 4, 100, 4, 2);
  const std::vector<SlotCount> S = {8, 4, 2, 1};
  const PlacementResult r = place_even_spread(w, S, 5);
  const SlotCount t_major = r.program.cycle_length();
  const AppearanceIndex idx(r.program, w.total_pages());
  for (PageId page = 0; page < w.total_pages(); ++page) {
    const SlotCount s = S[static_cast<std::size_t>(w.group_of(page))];
    const SlotCount ideal = (t_major + s - 1) / s;
    EXPECT_LE(idx.max_gap(page), 2 * ideal + 1) << "page " << page;
  }
}

TEST(Placement, SingleChannelFullPack) {
  const Workload w = make_workload({2, 4}, {2, 2});
  const std::vector<SlotCount> S = {2, 1};
  const PlacementResult r = place_even_spread(w, S, 1);
  EXPECT_EQ(r.program.cycle_length(), 6);
  EXPECT_EQ(r.program.occupied(), 6);  // fully packed
}

TEST(Placement, CapacityAlwaysSuffices) {
  // Awkward sizes that leave a ragged final column.
  const Workload w = make_workload({2, 4}, {3, 7});
  const std::vector<SlotCount> S = {3, 1};
  const PlacementResult r = place_even_spread(w, S, 3);
  EXPECT_EQ(r.program.occupied(), 16);
  EXPECT_EQ(r.program.cycle_length(), 6);  // ceil(16/3)
}

TEST(Placement, RejectsBadChannelCount) {
  const Workload w = make_workload({2}, {1});
  const std::vector<SlotCount> S = {1};
  EXPECT_THROW(place_even_spread(w, S, 0), std::invalid_argument);
}

TEST(Placement, PaperScaleOverflowsAreRare) {
  // The paper claims a window always has room; adversarially skewed
  // workloads can overflow occasionally, but the fallback must stay a
  // fraction-of-a-percent event so spacing remains essentially even.
  for (const GroupSizeShape shape : paper_shapes()) {
    const Workload w = make_paper_workload(shape);
    const std::vector<SlotCount> S = {128, 64, 32, 16, 8, 4, 2, 1};
    const auto copies = static_cast<double>(total_slots(w, S));
    for (const SlotCount channels : {1, 5, 20, 60}) {
      const PlacementResult r = place_even_spread(w, S, channels);
      EXPECT_LT(static_cast<double>(r.window_overflows), copies * 0.01)
          << shape_name(shape) << " channels=" << channels;
    }
  }
}

TEST(Placement, TrackerMatchesReferenceScan) {
  // The column-tracker placer (occupancy counts + pointer-jumping next-free
  // links) must reproduce the seed double-scan implementation exactly:
  // same program slot for slot, same overflow count.
  const std::vector<SlotCount> S = {128, 64, 32, 16, 8, 4, 2, 1};
  for (const GroupSizeShape shape : paper_shapes()) {
    const Workload w = make_paper_workload(shape);
    for (const SlotCount channels : {1, 5, 20, 60}) {
      const PlacementResult fast = place_even_spread(w, S, channels);
      const PlacementResult ref = place_even_spread_reference(w, S, channels);
      EXPECT_TRUE(fast.program == ref.program)
          << shape_name(shape) << " channels=" << channels;
      EXPECT_EQ(fast.window_overflows, ref.window_overflows)
          << shape_name(shape) << " channels=" << channels;
    }
  }
}

TEST(FirstFit, PlacesEverythingButSpreadsWorse) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 4, 80, 4, 2);
  const std::vector<SlotCount> S = {6, 3, 2, 1};
  const PlacementResult even = place_even_spread(w, S, 4);
  const PlacementResult fit = place_first_fit(w, S, 4);
  EXPECT_EQ(fit.program.occupied(), even.program.occupied());
  EXPECT_EQ(fit.program.cycle_length(), even.program.cycle_length());

  SimConfig config;
  config.requests.count = 20000;
  const double even_delay = simulate_requests(even.program, w, config).avg_delay;
  const double fit_delay = simulate_requests(fit.program, w, config).avg_delay;
  EXPECT_LT(even_delay, fit_delay);  // spreading must help
}

TEST(FirstFit, SingleCopyFrequenciesStillCoverAllPages) {
  const Workload w = make_workload({2, 4}, {4, 4});
  const std::vector<SlotCount> S = {1, 1};
  const PlacementResult r = place_first_fit(w, S, 2);
  const AppearanceIndex idx(r.program, w.total_pages());
  for (PageId page = 0; page < w.total_pages(); ++page)
    EXPECT_EQ(idx.count(page), 1);
}

}  // namespace
}  // namespace tcsa
