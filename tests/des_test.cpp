// Tests for the discrete-event engine and the on-demand server queue.
#include <gtest/gtest.h>

#include <vector>

#include "sim/des.hpp"
#include "sim/on_demand.hpp"

namespace tcsa {
namespace {

// ---------------------------------------------------------------- EventQueue

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run_until(10.0), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, SameTimeFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  q.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HorizonIsInclusive) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(5.0, [&] { ++fired; });
  q.schedule_at(5.0001, [&] { ++fired; });
  EXPECT_EQ(q.run_until(5.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, ActionsCanScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 10) q.schedule_in(1.0, tick);
  };
  q.schedule_at(0.0, tick);
  q.run_until(100.0);
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(q.now(), 100.0);
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue q;
  double seen = -1.0;
  q.schedule_at(4.5, [&] { seen = q.now(); });
  q.run_until(4.5);
  EXPECT_DOUBLE_EQ(seen, 4.5);
}

TEST(EventQueue, RejectsPastAndNull) {
  EventQueue q;
  q.schedule_at(2.0, [] {});
  q.run_until(2.0);
  EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_at(3.0, nullptr), std::invalid_argument);
}

TEST(EventQueue, EmptyAndPending) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.schedule_at(1.0, [] {});
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(1.0);
  EXPECT_TRUE(q.empty());
}

// ------------------------------------------------------------ OnDemandServer

TEST(OnDemand, SingleServerSerialises) {
  EventQueue q;
  OnDemandServer server(q, 1, 2.0);
  std::vector<double> responses;
  q.schedule_at(0.0, [&] {
    server.submit(0, [&](PageId, double r) { responses.push_back(r); });
    server.submit(1, [&](PageId, double r) { responses.push_back(r); });
    server.submit(2, [&](PageId, double r) { responses.push_back(r); });
  });
  q.run_until(100.0);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_DOUBLE_EQ(responses[0], 2.0);  // service only
  EXPECT_DOUBLE_EQ(responses[1], 4.0);  // one queue wait
  EXPECT_DOUBLE_EQ(responses[2], 6.0);  // two queue waits
  EXPECT_EQ(server.completed(), 3u);
}

TEST(OnDemand, ParallelServersOverlap) {
  EventQueue q;
  OnDemandServer server(q, 3, 2.0);
  std::vector<double> responses;
  q.schedule_at(0.0, [&] {
    for (PageId p = 0; p < 3; ++p)
      server.submit(p, [&](PageId, double r) { responses.push_back(r); });
  });
  q.run_until(100.0);
  ASSERT_EQ(responses.size(), 3u);
  for (const double r : responses) EXPECT_DOUBLE_EQ(r, 2.0);
}

TEST(OnDemand, QueueLengthObservedAtArrival) {
  EventQueue q;
  OnDemandServer server(q, 1, 1.0);
  q.schedule_at(0.0, [&] {
    server.submit(0);  // starts service; queue empty at arrival
    server.submit(1);  // queue empty (0 waiting) at arrival, then waits
    server.submit(2);  // sees 1 waiting
  });
  q.run_until(10.0);
  EXPECT_EQ(server.submitted(), 3u);
  EXPECT_DOUBLE_EQ(server.queue_at_arrival().max(), 1.0);
}

TEST(OnDemand, BusyAndQueueTrackedMidFlight) {
  EventQueue q;
  OnDemandServer server(q, 2, 5.0);
  q.schedule_at(0.0, [&] {
    server.submit(0);
    server.submit(1);
    server.submit(2);
  });
  q.schedule_at(1.0, [&] {
    EXPECT_EQ(server.busy_servers(), 2);
    EXPECT_EQ(server.queue_length(), 1u);
  });
  q.run_until(20.0);
  EXPECT_EQ(server.busy_servers(), 0);
  EXPECT_EQ(server.queue_length(), 0u);
  EXPECT_EQ(server.completed(), 3u);
}

TEST(OnDemand, ResponseStatsAccumulate) {
  EventQueue q;
  OnDemandServer server(q, 1, 1.0);
  q.schedule_at(0.0, [&] {
    server.submit(0);
    server.submit(1);
  });
  q.run_until(10.0);
  EXPECT_EQ(server.response_times().count(), 2u);
  EXPECT_DOUBLE_EQ(server.response_times().mean(), 1.5);  // (1 + 2) / 2
}

TEST(OnDemand, RejectsBadConfig) {
  EventQueue q;
  EXPECT_THROW(OnDemandServer(q, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(OnDemandServer(q, 1, 0.0), std::invalid_argument);
}

TEST(OnDemand, StaggeredArrivalsKeepFifo) {
  EventQueue q;
  OnDemandServer server(q, 1, 3.0);
  std::vector<PageId> completion_order;
  auto track = [&](PageId p, double) { completion_order.push_back(p); };
  q.schedule_at(0.0, [&] { server.submit(10, track); });
  q.schedule_at(1.0, [&] { server.submit(11, track); });
  q.schedule_at(2.0, [&] { server.submit(12, track); });
  q.run_until(100.0);
  EXPECT_EQ(completion_order, (std::vector<PageId>{10, 11, 12}));
}

}  // namespace
}  // namespace tcsa
