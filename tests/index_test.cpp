// Tests for the air-indexing module (src/index).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/channel_bound.hpp"
#include "core/pamad.hpp"
#include "core/susc.hpp"
#include "index/air_index.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

IndexConfig config_of(IndexStrategy strategy, SlotCount fanout = 4,
                      SlotCount m = 2) {
  IndexConfig config;
  config.strategy = strategy;
  config.fanout = fanout;
  config.replication = m;
  return config;
}

TEST(AirIndex, StrategyNamesRoundTrip) {
  for (const IndexStrategy s : {IndexStrategy::kNone, IndexStrategy::kOneM,
                                IndexStrategy::kDedicated}) {
    EXPECT_EQ(parse_index_strategy(index_strategy_name(s)), s);
  }
  EXPECT_THROW(parse_index_strategy("hash"), std::invalid_argument);
}

TEST(AirIndex, DirectorySizing) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});  // n = 11
  const BroadcastProgram p = schedule_susc(w);
  EXPECT_EQ(IndexedBroadcast(w, p, config_of(IndexStrategy::kOneM, 4))
                .directory_slots(),
            3);  // ceil(11/4)
  EXPECT_EQ(IndexedBroadcast(w, p, config_of(IndexStrategy::kNone))
                .directory_slots(),
            0);
  EXPECT_EQ(IndexedBroadcast(w, p, config_of(IndexStrategy::kOneM, 64))
                .directory_slots(),
            1);
}

TEST(AirIndex, OneMStretchesCycleByMTimesD) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram p = schedule_susc(w);  // cycle 8
  const IndexedBroadcast indexed(w, p, config_of(IndexStrategy::kOneM, 4, 2));
  EXPECT_EQ(indexed.cycle_length(), 8 + 2 * 3);
  EXPECT_EQ(indexed.total_channels(), p.channels());
}

TEST(AirIndex, DedicatedkeepsCycleAddsChannel) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram p = schedule_susc(w);
  const IndexedBroadcast indexed(w, p,
                                 config_of(IndexStrategy::kDedicated, 4));
  EXPECT_EQ(indexed.cycle_length(), p.cycle_length());
  EXPECT_EQ(indexed.total_channels(), p.channels() + 1);
}

TEST(AirIndex, NoneLatencyEqualsTuning) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram p = schedule_susc(w);
  const IndexedBroadcast indexed(w, p, config_of(IndexStrategy::kNone));
  for (double arrival : {0.0, 1.3, 6.9}) {
    const AccessOutcome outcome = indexed.access(5, arrival);
    EXPECT_DOUBLE_EQ(outcome.latency, outcome.tuning_time);
    EXPECT_GT(outcome.latency, 0.0);
  }
}

TEST(AirIndex, IndexedTuningIsThreeBuckets) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram p = schedule_susc(w);
  for (const IndexStrategy s :
       {IndexStrategy::kOneM, IndexStrategy::kDedicated}) {
    const IndexedBroadcast indexed(w, p, config_of(s, 4, 2));
    for (PageId page : {0u, 5u, 10u}) {
      const AccessOutcome outcome = indexed.access(page, 2.7);
      EXPECT_DOUBLE_EQ(outcome.tuning_time, 3.0)
          << index_strategy_name(s) << " page " << page;
      EXPECT_GE(outcome.latency, outcome.tuning_time);
    }
  }
}

TEST(AirIndex, LatencyOrderingProbeIndexPage) {
  // Latency must cover: probe (1 slot) + wait for directory bucket + wait
  // for the page. Lower bound: > 2 slots for any indexed access.
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram p = schedule_susc(w);
  const IndexedBroadcast indexed(w, p, config_of(IndexStrategy::kOneM, 4, 2));
  for (double arrival = 0.0; arrival < 14.0; arrival += 0.7)
    EXPECT_GT(indexed.access(7, arrival).latency, 2.0);
}

TEST(AirIndex, SimulateAggregatesAndIsDeterministic) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 4, 64, 4, 2);
  const PamadSchedule s = schedule_pamad(w, 3);
  const IndexedBroadcast indexed(w, s.program,
                                 config_of(IndexStrategy::kOneM, 16, 4));
  const IndexSimResult a = indexed.simulate(4000, 5);
  const IndexSimResult b = indexed.simulate(4000, 5);
  EXPECT_DOUBLE_EQ(a.avg_latency, b.avg_latency);
  EXPECT_DOUBLE_EQ(a.avg_tuning, b.avg_tuning);
  EXPECT_EQ(a.requests, 4000u);
  EXPECT_GT(a.avg_latency, a.avg_tuning);  // dozing saves energy, not time
}

TEST(AirIndex, IndexingSlashesTuningTime) {
  // The classic tradeoff: vs no index, (1,m) pays a little latency for an
  // order-of-magnitude tuning-time cut.
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 4, 64, 4, 2);
  const PamadSchedule s = schedule_pamad(w, 3);
  const IndexedBroadcast bare(w, s.program, config_of(IndexStrategy::kNone));
  const IndexedBroadcast onem(w, s.program,
                              config_of(IndexStrategy::kOneM, 16, 4));
  const IndexSimResult rb = bare.simulate(4000, 9);
  const IndexSimResult ro = onem.simulate(4000, 9);
  EXPECT_LT(ro.avg_tuning, rb.avg_tuning / 3.0);
  EXPECT_GT(ro.avg_latency, rb.avg_latency);  // stretch + protocol overhead
}

TEST(AirIndex, MoreReplicationShortensIndexWait) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 4, 64, 4, 2);
  const PamadSchedule s = schedule_pamad(w, 3);
  const IndexSimResult m1 =
      IndexedBroadcast(w, s.program, config_of(IndexStrategy::kOneM, 16, 1))
          .simulate(6000, 3);
  const IndexSimResult m8 =
      IndexedBroadcast(w, s.program, config_of(IndexStrategy::kOneM, 16, 8))
          .simulate(6000, 3);
  // More segments = shorter wait to the next directory, at equal tuning.
  EXPECT_DOUBLE_EQ(m1.avg_tuning, m8.avg_tuning);
  // Latency balance: m=8 stretches the cycle more but reaches an index
  // sooner; for this small directory the reach-sooner effect dominates.
  EXPECT_LT(m8.avg_latency, m1.avg_latency * 1.5);
}

TEST(AirIndex, DedicatedBeatsOneMOnLatency) {
  // The dedicated channel avoids stretching the data cycle.
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 4, 64, 4, 2);
  const PamadSchedule s = schedule_pamad(w, 3);
  const IndexSimResult onem =
      IndexedBroadcast(w, s.program, config_of(IndexStrategy::kOneM, 8, 4))
          .simulate(6000, 7);
  const IndexSimResult dedicated =
      IndexedBroadcast(w, s.program,
                       config_of(IndexStrategy::kDedicated, 8))
          .simulate(6000, 7);
  EXPECT_LT(dedicated.avg_latency, onem.avg_latency);
  EXPECT_EQ(dedicated.avg_tuning, onem.avg_tuning);
}

TEST(AirIndex, RejectsBadConfig) {
  const Workload w = make_workload({2}, {2});
  BroadcastProgram p(1, 2);
  p.place(0, 0, 0);
  p.place(0, 1, 1);
  EXPECT_THROW(IndexedBroadcast(w, p, config_of(IndexStrategy::kOneM, 0)),
               std::invalid_argument);
  IndexConfig bad = config_of(IndexStrategy::kOneM);
  bad.replication = 0;
  EXPECT_THROW(IndexedBroadcast(w, p, bad), std::invalid_argument);
  const IndexedBroadcast ok(w, p, config_of(IndexStrategy::kNone));
  EXPECT_THROW(ok.access(9, 0.0), std::invalid_argument);
  EXPECT_THROW(ok.simulate(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace tcsa
