// Tests for the request-journey layer: the NTP-style clock-offset
// estimator, the crash-safe flight recorder (including a SIGKILL'd child),
// trace-id minting, and the exact-percentile reservoir.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/clock_sync.hpp"
#include "obs/metrics.hpp"
#include "obs/reqtrace.hpp"

namespace tcsa::obs {
namespace {

// ------------------------------------------------------------ clock sync

TEST(ClockOffsetEstimator, SymmetricExchangeRecoversExactOffset) {
  // Server clock runs 5000us ahead of the client's; both legs take 40us.
  ClockOffsetEstimator est;
  EXPECT_FALSE(est.has_estimate());
  const std::uint64_t t0 = 1000;
  const std::uint64_t t1 = t0 + 40 + 5000;  // arrive, on the server clock
  const std::uint64_t t2 = t1 + 10;         // 10us of server hold time
  const std::uint64_t t3 = t0 + 40 + 10 + 40;
  est.add_sample(t0, t1, t2, t3);
  ASSERT_TRUE(est.has_estimate());
  EXPECT_EQ(est.offset_us(), 5000);
  EXPECT_EQ(est.rtt_us(), 80u);
  EXPECT_EQ(est.samples(), 1u);
}

TEST(ClockOffsetEstimator, NegativeOffsetWhenServerClockLags) {
  // Server clock 3ms behind: legs of 25us each, 5us hold.
  ClockOffsetEstimator est;
  const std::uint64_t t0 = 100000;
  const std::uint64_t t1 = t0 + 25 - 3000;
  const std::uint64_t t2 = t1 + 5;
  const std::uint64_t t3 = t0 + 25 + 5 + 25;
  est.add_sample(t0, t1, t2, t3);
  ASSERT_TRUE(est.has_estimate());
  EXPECT_EQ(est.offset_us(), -3000);
  EXPECT_EQ(est.rtt_us(), 50u);
}

TEST(ClockOffsetEstimator, AsymmetricPathErrorBoundedByHalfRtt) {
  // True offset is 0, but the outbound leg takes 90us and the return 10us.
  // The estimator cannot see the asymmetry; its error must stay within
  // rtt/2 of the truth, which is the documented bound.
  ClockOffsetEstimator est;
  const std::uint64_t t0 = 5000;
  const std::uint64_t t1 = t0 + 90;
  const std::uint64_t t2 = t1 + 20;
  const std::uint64_t t3 = t2 + 10;
  est.add_sample(t0, t1, t2, t3);
  ASSERT_TRUE(est.has_estimate());
  EXPECT_EQ(est.rtt_us(), 100u);
  const std::int64_t error = est.offset_us() - 0;
  EXPECT_LE(std::abs(error), static_cast<std::int64_t>(est.rtt_us()) / 2);
  // For this exchange the bias is exactly (out - back) / 2 = +40us.
  EXPECT_EQ(est.offset_us(), 40);
}

TEST(ClockOffsetEstimator, KeepsMinimumRttSample) {
  ClockOffsetEstimator est;
  // Slow, badly-biased exchange first: rtt 400us, offset reads 1200.
  est.add_sample(0, 1300, 1310, 400);
  ASSERT_TRUE(est.has_estimate());
  EXPECT_EQ(est.rtt_us(), 390u);
  // A tight exchange refines it: rtt 30us, near-symmetric legs.
  est.add_sample(2000, 3010, 3020, 2040);
  EXPECT_EQ(est.rtt_us(), 30u);
  EXPECT_EQ(est.offset_us(), 995);
  // A later, slower exchange must NOT displace the tight one.
  est.add_sample(5000, 6500, 6510, 5600);
  EXPECT_EQ(est.rtt_us(), 30u);
  EXPECT_EQ(est.offset_us(), 995);
  EXPECT_EQ(est.samples(), 3u);
}

TEST(ClockOffsetEstimator, EqualRttTieGoesToNewerSample) {
  // Two exchanges with identical rtt but drifted offsets: the estimator
  // keeps the newer one so a long-lived client tracks drift.
  ClockOffsetEstimator est;
  est.add_sample(0, 1020, 1030, 60);    // rtt 50, offset ~1005
  est.add_sample(100, 1920, 1930, 160); // rtt 50, offset ~1805
  EXPECT_EQ(est.rtt_us(), 50u);
  EXPECT_EQ(est.offset_us(), 1795);
}

TEST(ClockOffsetEstimator, DropsImpossibleSamples) {
  ClockOffsetEstimator est;
  // Ack "arrived" before the request left.
  est.add_sample(1000, 2000, 2010, 900);
  EXPECT_FALSE(est.has_estimate());
  // Server "sent" the ack before receiving the request.
  est.add_sample(1000, 2010, 2000, 1100);
  EXPECT_FALSE(est.has_estimate());
  // Server held the request longer than the whole exchange took.
  est.add_sample(1000, 2000, 2500, 1100);
  EXPECT_FALSE(est.has_estimate());
  EXPECT_EQ(est.samples(), 0u);
  // A sane sample still lands after the garbage.
  est.add_sample(1000, 2020, 2030, 1050);
  EXPECT_TRUE(est.has_estimate());
  EXPECT_EQ(est.samples(), 1u);
}

// ------------------------------------------------------------- trace ids

TEST(MintTraceId, NonzeroUniqueAndPidTagged) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = mint_trace_id();
    EXPECT_NE(id, 0u);
    EXPECT_EQ(id >> 40,
              static_cast<std::uint64_t>(::getpid()) & ((1ull << 24) - 1))
        << "high bits must carry the pid";
    EXPECT_TRUE(seen.insert(id).second) << "duplicate trace id";
  }
}

TEST(ReqStageName, CoversTaxonomyAndRejectsGarbage) {
  EXPECT_STREQ(req_stage_name(ReqStage::kClientSent), "client.req.sent");
  EXPECT_STREQ(req_stage_name(ReqStage::kClientDone), "client.req.done");
  EXPECT_STREQ(req_stage_name(ReqStage::kServerRecv), "server.req.recv");
  EXPECT_STREQ(req_stage_name(ReqStage::kServerFlushed),
               "server.req.flushed");
  EXPECT_STREQ(req_stage_name(static_cast<ReqStage>(255)), "req.unknown");
}

// -------------------------------------------------------- flight recorder

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("tcsa_flight_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".bin"))
                .string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::string path_;
};

TEST_F(FlightRecorderTest, RoundTripPreservesEveryField) {
  FlightRecorder rec;
  ASSERT_TRUE(rec.open(path_, 16)) << rec.error();
  EXPECT_TRUE(rec.is_open());
  rec.record(0xABCDEF, ReqStage::kClientSent, 111, 7);
  rec.record(0xABCDEF, ReqStage::kServerRecv, 222, 3);
  rec.record(0x123456, ReqStage::kClientDone,
             333, static_cast<std::uint64_t>(-42));
  EXPECT_EQ(rec.recorded(), 3u);
  rec.close();
  EXPECT_FALSE(rec.is_open());

  bool sealed = false;
  const std::vector<FlightEvent> events = flight_load(path_, &sealed);
  EXPECT_TRUE(sealed) << "close() must seal the header";
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].ordinal, 1u);
  EXPECT_EQ(events[0].trace_id, 0xABCDEFu);
  EXPECT_EQ(events[0].stage,
            static_cast<std::uint32_t>(ReqStage::kClientSent));
  EXPECT_EQ(events[0].t_us, 111u);
  EXPECT_EQ(events[0].arg, 7u);
  EXPECT_EQ(events[1].stage,
            static_cast<std::uint32_t>(ReqStage::kServerRecv));
  EXPECT_EQ(events[2].ordinal, 3u);
  EXPECT_EQ(static_cast<std::int64_t>(events[2].arg), -42);
}

TEST_F(FlightRecorderTest, WrapKeepsTheMostRecentCapacityEvents) {
  constexpr std::uint32_t kCapacity = 8;
  constexpr std::uint64_t kTotal = 27;
  FlightRecorder rec;
  ASSERT_TRUE(rec.open(path_, kCapacity)) << rec.error();
  for (std::uint64_t i = 1; i <= kTotal; ++i)
    rec.record(i, ReqStage::kServerFlushed, i * 10, i);
  EXPECT_EQ(rec.recorded(), kTotal);
  rec.close();

  const std::vector<FlightEvent> events = flight_load(path_);
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kCapacity));
  // Exactly ordinals 20..27, oldest first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ordinal, kTotal - kCapacity + 1 + i);
    EXPECT_EQ(events[i].trace_id, events[i].ordinal);
    EXPECT_EQ(events[i].t_us, events[i].ordinal * 10);
  }
}

TEST_F(FlightRecorderTest, TornCellIsDroppedNotMisread) {
  FlightRecorder rec;
  ASSERT_TRUE(rec.open(path_, 4)) << rec.error();
  rec.record(1, ReqStage::kClientSent, 10, 0);
  rec.record(2, ReqStage::kClientAcked, 20, 0);
  rec.record(3, ReqStage::kClientDone, 30, 0);
  rec.close();

  // Tear cell index 1 (ordinal 2) the way a mid-write SIGKILL would: the
  // commit ordinal never lands. Header is 64 bytes, cells 48, commit at
  // +40 inside the cell.
  {
    std::fstream file(path_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    const std::uint64_t stale = 0;
    file.seekp(64 + 1 * 48 + 40);
    file.write(reinterpret_cast<const char*>(&stale), sizeof stale);
  }
  const std::vector<FlightEvent> events = flight_load(path_);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ordinal, 1u);
  EXPECT_EQ(events[1].ordinal, 3u);
}

TEST_F(FlightRecorderTest, RejectsForeignAndTruncatedFiles) {
  {
    std::ofstream file(path_, std::ios::binary);
    file << "this is not a flight ring, it is barely a file";
  }
  EXPECT_THROW(flight_load(path_), std::runtime_error);
  EXPECT_THROW(flight_load(path_ + ".missing"), std::runtime_error);

  // A valid header claiming more cells than the file holds.
  FlightRecorder rec;
  ASSERT_TRUE(rec.open(path_, 64)) << rec.error();
  rec.record(1, ReqStage::kClientSent, 1, 0);
  rec.close();
  std::filesystem::resize_file(path_, 64 + 10 * 48);
  EXPECT_THROW(flight_load(path_), std::runtime_error);
}

TEST_F(FlightRecorderTest, RecordWhileClosedIsANoOp) {
  FlightRecorder rec;
  EXPECT_FALSE(rec.is_open());
  rec.record(1, ReqStage::kClientSent, 1, 0);  // must not crash
  EXPECT_EQ(rec.recorded(), 0u);
  rec.seal();  // also a no-op while closed
  EXPECT_FALSE(rec.open(path_, 0)) << "zero capacity must be rejected";
  EXPECT_FALSE(rec.error().empty());
}

TEST_F(FlightRecorderTest, ConcurrentWritersLoseNoCommittedRecords) {
  // Capacity exceeds the total record count, so no writer laps another:
  // every cell is written exactly once and the replay must be exact. (The
  // wrap path is covered single-threaded above; lapped-writer races are
  // allowed to shed cells by design, which would make exact assertions
  // here flaky.)
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  constexpr std::uint32_t kCapacity = 16384;
  FlightRecorder rec;
  ASSERT_TRUE(rec.open(path_, kCapacity)) << rec.error();
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&rec, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        rec.record((static_cast<std::uint64_t>(t) << 32) | i,
                   ReqStage::kServerEncoded, i, static_cast<std::uint64_t>(t));
    });
  for (auto& w : writers) w.join();
  EXPECT_EQ(rec.recorded(), kThreads * kPerThread);
  rec.close();

  const std::vector<FlightEvent> events = flight_load(path_);
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  std::uint64_t prev = 0;
  for (const FlightEvent& event : events) {
    EXPECT_EQ(event.ordinal, prev + 1) << "ordinals must be gap-free";
    prev = event.ordinal;
    const std::uint64_t thread = event.trace_id >> 32;
    ASSERT_LT(thread, static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(event.arg, thread) << "payload fields written by different "
                                    "threads must not interleave";
    EXPECT_EQ(event.t_us, event.trace_id & 0xFFFFFFFFu);
  }
}

TEST_F(FlightRecorderTest, SigkilledChildLeavesAReadableRing) {
  // The whole point of MAP_SHARED: a child that is killed dead — no
  // destructors, no close(), no seal — still leaves every committed
  // record in the page cache for the parent to replay.
  constexpr std::uint64_t kEvents = 40;
  const pid_t child = ::fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    FlightRecorder rec;
    if (!rec.open(path_, 64)) _exit(2);
    for (std::uint64_t i = 1; i <= kEvents; ++i)
      rec.record(0xF00D00 + i, ReqStage::kServerFlushed, i * 100, i);
    ::kill(::getpid(), SIGKILL);
    _exit(3);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  bool sealed = true;
  const std::vector<FlightEvent> events = flight_load(path_, &sealed);
  EXPECT_FALSE(sealed) << "a SIGKILL'd writer cannot have sealed the ring";
  ASSERT_EQ(events.size(), kEvents);
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    EXPECT_EQ(events[i].ordinal, i + 1);
    EXPECT_EQ(events[i].trace_id, 0xF00D00 + i + 1);
    EXPECT_EQ(events[i].t_us, (i + 1) * 100);
  }
}

// -------------------------------------------------------- ReqPercentiles

/// Flips the process-wide metrics gate on for one test and restores the
/// previous state after, so suite ordering stays irrelevant.
class MetricsEnabledScope {
 public:
  MetricsEnabledScope() : was_(enabled()) {
    set_enabled(true);
    reset_metrics();
  }
  ~MetricsEnabledScope() { set_enabled(was_); }

 private:
  bool was_;
};

TEST(ReqPercentiles, NearestRankMatchesHandComputedValues) {
  MetricsEnabledScope metrics_on;
  ReqPercentiles pct("test_reqtrace_delay", "us", "test percentiles",
                     {100.0, 1000.0});
  EXPECT_EQ(pct.percentile(0.5), 0.0) << "empty reservoir reads 0";
  for (int i = 1; i <= 100; ++i) pct.record(static_cast<double>(i));
  EXPECT_EQ(pct.count(), 100u);
  // Nearest rank over 1..100: ceil(q*100) picks the value directly.
  EXPECT_EQ(pct.percentile(0.50), 50.0);
  EXPECT_EQ(pct.percentile(0.99), 99.0);
  EXPECT_EQ(pct.percentile(1.0), 100.0);
  EXPECT_EQ(pct.percentile(0.0), 1.0);

  pct.publish();
  const MetricsSnapshot snap = snapshot();
  EXPECT_EQ(snap.gauge_value("test_reqtrace_delay_p50_us"), 50.0);
  EXPECT_EQ(snap.gauge_value("test_reqtrace_delay_p99_us"), 99.0);
  const HistogramSnapshot* hist = snap.histogram("test_reqtrace_delay_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->total(), 100u);
}

TEST(ReqPercentiles, DecimationKeepsPercentilesStable) {
  MetricsEnabledScope metrics_on;
  ReqPercentiles pct("test_reqtrace_big", "us", "decimation test", {1.0});
  // 2^17 + a half more forces at least one halving of the reservoir. A
  // uniform ramp keeps the true percentiles known.
  const std::uint64_t total = (std::uint64_t{1} << 17) + 60000;
  for (std::uint64_t i = 0; i < total; ++i)
    pct.record(static_cast<double>(i));
  EXPECT_EQ(pct.count(), total);
  const double p50 = pct.percentile(0.50);
  const double p99 = pct.percentile(0.99);
  // Stride-decimated nearest rank stays within a stride of the truth;
  // 1% slack is orders of magnitude looser than that.
  EXPECT_NEAR(p50, static_cast<double>(total) * 0.50,
              static_cast<double>(total) * 0.01);
  EXPECT_NEAR(p99, static_cast<double>(total) * 0.99,
              static_cast<double>(total) * 0.01);
}

}  // namespace
}  // namespace tcsa::obs
