// pull_parity_test.cpp — satellite 1: the LIVE pull plane reproduces the
// sim/hybrid impatient-client model on the same program and workload.
//
// A valid broadcast program never exceeds a page's expected time between
// airings, so with per-page-t_p patience both planes would report a pull
// fraction of ~0 and the comparison would be vacuous. Instead both sides
// run against TIGHTENED deadlines — a workload with every expected time
// halved, used only for the patience/deadline lookup — which makes roughly
// half of all requests miss their window and fall back to the pull path.
//
// Decision rules line up exactly: sim serves a request by broadcast iff
// its continuous wait w <= d (w = k - frac for an airing k slots ahead of
// an arrival uniform inside a slot, so w <= d  <=>  k <= d); the live
// client serves a want iff its page airs within `patience` whole slots of
// the issue slot (k <= patience). Passing patience = d makes both sides
// apply the same threshold to the same program, and the residual
// differences are sampling noise plus sub-slot quantization — hence the
// wide tolerances asserted below.
#include <algorithm>
#include <random>
#include <thread>

#include <gtest/gtest.h>

#include "core/api.hpp"
#include "model/workload.hpp"
#include "net/framing.hpp"
#include "server/air_server.hpp"
#include "server/tune_client.hpp"
#include "sim/hybrid.hpp"

using namespace tcsa;

namespace {

/// Runs an AirServer on a background thread; stops and joins on scope exit.
class ServerHarness {
 public:
  ServerHarness(Workload workload, AirServerConfig config)
      : server_(std::move(workload), config),
        thread_([this] { server_.run(); }) {}
  ~ServerHarness() {
    server_.stop();
    if (thread_.joinable()) thread_.join();
  }
  AirServer& server() { return server_; }
  TuneClient::Options client_options(std::uint64_t mask) const {
    TuneClient::Options options;
    options.port = server_.port();
    options.channel_mask = mask;
    return options;
  }

 private:
  AirServer server_;
  std::thread thread_;
};

TEST(PullParity, LivePlaneMatchesHybridSimOnTightenedDeadlines) {
  // Same program on both sides: SUSC is deterministic, so building it here
  // and letting the server build it again (auto_method off) agree exactly.
  const Workload base = make_workload({4, 8, 16}, {3, 5, 3});   // 11 pages
  const Workload tight = make_workload({2, 4, 8}, {3, 5, 3});   // halved t
  constexpr SlotCount kChannels = 2;
  const ScheduleOutcome outcome =
      make_schedule(Method::kSusc, base, kChannels);

  // --- simulated impatient clients over the tightened deadlines ---
  HybridConfig sim_config;
  sim_config.arrival_rate = 2.0;
  sim_config.horizon = 4000.0;
  sim_config.seed = 7;  // Popularity::kUniform by default
  const HybridResult sim = simulate_hybrid(outcome.program, tight, sim_config);
  // Sanity: the tightened deadlines bite, but not degenerately.
  ASSERT_GT(sim.pull_fraction, 0.2);
  ASSERT_LT(sim.pull_fraction, 0.8);

  // --- the live plane, same program, same decision threshold ---
  AirServerConfig config;
  config.slot_us = 300;
  config.max_slots = 4000;
  config.channels = kChannels;
  config.auto_method = false;
  config.method = Method::kSusc;
  config.pull_channels = 1;
  ServerHarness harness(base, config);

  TuneClient client(harness.client_options(net::kAllChannels));
  client.run(8);  // settle onto the broadcast clock
  // Uniform page draws; a 3-slot stride is coprime with every group period
  // {4, 8, 16}, so issue slots sweep all phases of every page's airing.
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<PageId> draw(
      0, static_cast<PageId>(base.total_pages()) - 1);
  constexpr int kWants = 220;
  for (int i = 0; i < kWants; ++i) {
    const PageId page = draw(rng);
    client.want_page(page,
                     static_cast<std::int64_t>(tight.expected_time_of(page)));
    ASSERT_FALSE(client.run(3)) << "server left the air mid-experiment";
  }
  client.run(12);  // let the last wants decide (max tightened patience is 8)

  const TuneSummary summary = client.summary();
  const TuneWantStats& wants = summary.wants;
  ASSERT_EQ(wants.issued, static_cast<std::uint64_t>(kWants));
  EXPECT_EQ(wants.undecided, 0u);
  ASSERT_GT(wants.broadcast_served, 0u);
  ASSERT_GT(wants.pulled, 0u);

  // Pull fraction: binomial noise at n=220 is ~0.035; 0.12 also absorbs
  // the sub-slot quantization and issue-phase bias of the live client.
  EXPECT_NEAR(wants.pull_fraction, sim.pull_fraction, 0.12);

  // Broadcast waits: the live client counts whole slots from the issue
  // slot, the sim measures continuous waits from a mid-slot arrival, so
  // the means may differ by up to about half a slot plus noise.
  EXPECT_NEAR(wants.mean_broadcast_wait_slots, sim.avg_broadcast_wait,
              std::max(1.0, 0.35 * sim.avg_broadcast_wait));

  // The timed-out wants exercised the real pull channel, not a stub: the
  // server aired them and the kPull completions came back.
  EXPECT_GE(harness.server().pull_airings(), 1u);
  EXPECT_GE(wants.pull_completed, 1u);
  EXPECT_GE(wants.pull_frames, 1u);
}

}  // namespace
