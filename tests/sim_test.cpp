// Tests for the broadcast-access simulator (the AvgD measurement machinery).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/susc.hpp"
#include "model/appearance_index.hpp"
#include "sim/broadcast_sim.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

BroadcastProgram single_page_every(SlotCount spacing, SlotCount cycle) {
  BroadcastProgram p(1, cycle);
  for (SlotCount s = 0; s < cycle; s += spacing) p.place(0, s, 0);
  return p;
}

TEST(Sim, HandComputedWaits) {
  // Page completes at 1, 5 in a cycle of 8.
  BroadcastProgram p(1, 8);
  p.place(0, 0, 0);
  p.place(0, 4, 0);
  const AppearanceIndex idx(p, 1);
  EXPECT_DOUBLE_EQ(wait_for(idx, 0, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(wait_for(idx, 0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(wait_for(idx, 0, 4.5), 0.5);
  EXPECT_DOUBLE_EQ(wait_for(idx, 0, 6.0), 3.0);  // wraps to 1 + 8
}

TEST(Sim, MeanWaitMatchesHalfSpacing) {
  // Even spacing g: waits uniform on (0, g], mean g/2.
  const Workload w = make_workload({2}, {1});
  const BroadcastProgram p = single_page_every(4, 16);
  SimConfig config;
  config.requests.count = 50000;
  const SimResult r = simulate_requests(p, w, config);
  EXPECT_NEAR(r.avg_wait, 2.0, 0.05);
}

TEST(Sim, DelayMatchesClosedForm) {
  // g = 8, t = 2: delay mean (8-2)^2/(2*8) = 2.25; miss prob (8-2)/8 = 0.75.
  const Workload w = make_workload({2}, {1});
  const BroadcastProgram p = single_page_every(8, 16);
  SimConfig config;
  config.requests.count = 100000;
  const SimResult r = simulate_requests(p, w, config);
  EXPECT_NEAR(r.avg_delay, 2.25, 0.05);
  EXPECT_NEAR(r.miss_rate, 0.75, 0.01);
  EXPECT_NEAR(r.max_delay, 6.0, 0.05);
}

TEST(Sim, QuantilesOrdered) {
  const Workload w = make_workload({2}, {1});
  const BroadcastProgram p = single_page_every(8, 16);
  SimConfig config;
  config.requests.count = 20000;
  const SimResult r = simulate_requests(p, w, config);
  EXPECT_LE(r.p50_delay, r.p95_delay);
  EXPECT_LE(r.p95_delay, r.p99_delay);
  EXPECT_LE(r.p99_delay, r.max_delay);
}

TEST(Sim, DeterministicInSeed) {
  const Workload w = make_workload({2, 4}, {3, 5});
  const BroadcastProgram p = schedule_susc(w);
  SimConfig a, b;
  a.seed = b.seed = 77;
  a.requests.count = b.requests.count = 1000;
  const SimResult ra = simulate_requests(p, w, a);
  const SimResult rb = simulate_requests(p, w, b);
  EXPECT_DOUBLE_EQ(ra.avg_wait, rb.avg_wait);
  EXPECT_DOUBLE_EQ(ra.avg_delay, rb.avg_delay);
}

TEST(Sim, DifferentSeedsDiffer) {
  const Workload w = make_workload({2}, {1});
  const BroadcastProgram p = single_page_every(8, 16);
  SimConfig a, b;
  a.seed = 1;
  b.seed = 2;
  a.requests.count = b.requests.count = 1000;
  EXPECT_NE(simulate_requests(p, w, a).avg_wait,
            simulate_requests(p, w, b).avg_wait);
}

TEST(Sim, PerGroupDelaysSeparate) {
  // Two groups, same spacing 8; t = 2 suffers, t = 8 does not.
  const Workload w = make_workload({2, 8}, {1, 1});
  BroadcastProgram p(1, 16);
  for (SlotCount s = 0; s < 16; s += 8) p.place(0, s, 0);
  for (SlotCount s = 4; s < 16; s += 8) p.place(0, s, 1);
  SimConfig config;
  config.requests.count = 40000;
  const SimResult r = simulate_requests(p, w, config);
  ASSERT_EQ(r.group_avg_delay.size(), 2u);
  EXPECT_NEAR(r.group_avg_delay[0], 2.25, 0.1);
  EXPECT_NEAR(r.group_avg_delay[1], 0.0, 1e-12);
}

TEST(Sim, EmptyRequestStream) {
  const Workload w = make_workload({2}, {1});
  const BroadcastProgram p = single_page_every(2, 4);
  const AppearanceIndex idx(p, 1);
  const SimResult r = simulate_requests(idx, w, {});
  EXPECT_EQ(r.requests, 0u);
  EXPECT_DOUBLE_EQ(r.avg_delay, 0.0);
}

TEST(Sim, PreGeneratedStreamPath) {
  const Workload w = make_workload({4}, {1});
  const BroadcastProgram p = single_page_every(4, 8);
  const AppearanceIndex idx(p, 1);
  // Completions at 1 and 5 (slots 0 and 4). Arrivals at 0.0 and 2.0 wait
  // 1.0 and 3.0 respectively; both within t = 4.
  const std::vector<Request> requests = {{0, 0.0}, {0, 2.0}};
  const SimResult r = simulate_requests(idx, w, requests);
  EXPECT_EQ(r.requests, 2u);
  EXPECT_DOUBLE_EQ(r.avg_wait, 2.0);
  EXPECT_DOUBLE_EQ(r.avg_delay, 0.0);
  EXPECT_DOUBLE_EQ(r.miss_rate, 0.0);
}

TEST(Sim, BatchedMatchesScalarReference) {
  // The page-batched wait computation must agree with the per-request
  // binary-search path on every statistic, bit for bit, across the paper
  // workloads and both popularity models.
  for (const GroupSizeShape shape : paper_shapes()) {
    const Workload w = make_paper_workload(shape, 6, 300, 4, 2);
    const BroadcastProgram p = schedule_susc(w);
    const AppearanceIndex idx(p, w.total_pages());
    for (const Popularity pop : {Popularity::kUniform, Popularity::kZipf}) {
      RequestConfig rc;
      rc.count = 20000;
      rc.popularity = pop;
      Rng rng(static_cast<std::uint64_t>(shape) * 2 +
              static_cast<std::uint64_t>(pop) + 1);
      const std::vector<Request> requests = generate_requests(
          w, static_cast<double>(p.cycle_length()), rc, rng);
      const SimResult batched = simulate_requests(idx, w, requests);
      const SimResult scalar = simulate_requests_reference(idx, w, requests);
      EXPECT_EQ(batched.requests, scalar.requests);
      EXPECT_EQ(batched.avg_wait, scalar.avg_wait) << shape_name(shape);
      EXPECT_EQ(batched.avg_delay, scalar.avg_delay) << shape_name(shape);
      EXPECT_EQ(batched.miss_rate, scalar.miss_rate) << shape_name(shape);
      EXPECT_EQ(batched.p50_delay, scalar.p50_delay) << shape_name(shape);
      EXPECT_EQ(batched.p95_delay, scalar.p95_delay) << shape_name(shape);
      EXPECT_EQ(batched.p99_delay, scalar.p99_delay) << shape_name(shape);
      EXPECT_EQ(batched.max_delay, scalar.max_delay) << shape_name(shape);
      EXPECT_EQ(batched.group_avg_delay, scalar.group_avg_delay)
          << shape_name(shape);
    }
  }
}

TEST(Sim, ZipfStreamStillBounded) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 4, 40, 2, 2);
  const BroadcastProgram p = schedule_susc(w);
  SimConfig config;
  config.requests.count = 5000;
  config.requests.popularity = Popularity::kZipf;
  config.requests.zipf_theta = 1.0;
  const SimResult r = simulate_requests(p, w, config);
  EXPECT_DOUBLE_EQ(r.avg_delay, 0.0);  // SUSC is valid regardless of access
}

}  // namespace
}  // namespace tcsa
