// Randomised property tests: hundreds of generated workloads driven through
// the full pipeline, checking the invariants the hand-written tests pin on
// specific instances. Seeds are fixed, so failures reproduce exactly.
#include <gtest/gtest.h>

#include <sstream>

#include "core/channel_bound.hpp"
#include "core/delay_model.hpp"
#include "core/edf.hpp"
#include "core/mpb.hpp"
#include "core/opt.hpp"
#include "core/pamad.hpp"
#include "core/susc.hpp"
#include "core/theory.hpp"
#include "index/air_index.hpp"
#include "model/appearance_index.hpp"
#include "model/serialize.hpp"
#include "model/validate.hpp"
#include "sim/broadcast_sim.hpp"
#include "sim/lossy.hpp"
#include "util/rng.hpp"
#include "workload/rearrange.hpp"

namespace tcsa {
namespace {

/// Random ladder workload: h in [1,6], t1 in [1,6], per-step ratio in
/// {2,3,4} (mixed ratios allowed — the divisibility generalisation),
/// group sizes in [1, 40].
Workload random_workload(Rng& rng) {
  const auto h = static_cast<GroupId>(rng.uniform_int(1, 6));
  std::vector<GroupSpec> groups;
  SlotCount t = rng.uniform_int(1, 6);
  for (GroupId g = 0; g < h; ++g) {
    groups.push_back(GroupSpec{t, rng.uniform_int(1, 40)});
    t *= rng.uniform_int(2, 4);
  }
  return Workload(std::move(groups));
}

class FuzzCase : public ::testing::TestWithParam<int> {};

TEST_P(FuzzCase, SuscValidAtTheBound) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  for (int i = 0; i < 20; ++i) {
    const Workload w = random_workload(rng);
    const BroadcastProgram p = schedule_susc(w);
    const ValidityReport report = validate_program(p, w);
    EXPECT_TRUE(report.valid)
        << w.describe() << " seed-case " << GetParam() << "/" << i
        << (report.violations.empty() ? ""
                                      : (": " + report.violations.front()));
  }
}

TEST_P(FuzzCase, PamadStructureHolds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 2);
  for (int i = 0; i < 15; ++i) {
    const Workload w = random_workload(rng);
    const SlotCount bound = min_channels(w);
    const SlotCount channels = rng.uniform_int(1, bound);
    const PamadSchedule s = schedule_pamad(w, channels);

    // Copy counts match the frequency vector exactly.
    EXPECT_EQ(s.program.occupied(), total_slots(w, s.frequencies.S));
    const AppearanceIndex idx(s.program, w.total_pages());
    for (PageId page = 0; page < w.total_pages(); ++page) {
      const GroupId g = w.group_of(page);
      EXPECT_EQ(idx.count(page),
                s.frequencies.S[static_cast<std::size_t>(g)])
          << w.describe() << " page " << page << " channels " << channels;
    }
    // Frequencies non-increasing, last group once.
    for (std::size_t g = 1; g < s.frequencies.S.size(); ++g)
      EXPECT_LE(s.frequencies.S[g], s.frequencies.S[g - 1]);
    EXPECT_EQ(s.frequencies.S.back(), 1);
  }
}

TEST_P(FuzzCase, MethodOrderingHolds) {
  // continuous bound <= unconstrained OPT <= ladder OPT <= PAMAD,
  // and PAMAD never materially worse than m-PB.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 3);
  for (int i = 0; i < 8; ++i) {
    const Workload w = random_workload(rng);
    const SlotCount channels = rng.uniform_int(1, min_channels(w));
    const double continuous = continuous_delay_lower_bound(w, channels);
    const double free_opt =
        opt_frequencies_unconstrained(w, channels).predicted_delay;
    const double ladder_opt = opt_frequencies(w, channels).predicted_delay;
    const double pamad = pamad_frequencies(w, channels).predicted_delay;
    const double mpb = schedule_mpb(w, channels).predicted_delay;

    const std::string context = w.describe() + " channels=" +
                                std::to_string(channels);
    EXPECT_LE(continuous, free_opt + 1e-9) << context;
    EXPECT_LE(free_opt, ladder_opt + 1e-9) << context;
    EXPECT_LE(ladder_opt, pamad + 1e-9) << context;
    EXPECT_LE(pamad, mpb * 1.05 + 0.05) << context;
  }
}

TEST_P(FuzzCase, SimulationTracksModel) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 4);
  for (int i = 0; i < 6; ++i) {
    const Workload w = random_workload(rng);
    const SlotCount channels = rng.uniform_int(1, min_channels(w));
    const PamadSchedule s = schedule_pamad(w, channels);
    SimConfig sim;
    sim.requests.count = 20000;
    sim.seed = rng();
    const double measured = simulate_requests(s.program, w, sim).avg_delay;
    const double predicted = s.frequencies.predicted_delay;
    // Placement granularity on tiny cycles can stretch gaps well past the
    // even-spacing ideal; the bound here is deliberately loose — it exists
    // to catch wild disagreement (wrong cycle, off-by-one waits), not to
    // re-verify the model (delay_model_test does that tightly).
    EXPECT_NEAR(measured, predicted,
                std::max(2.0, predicted * 0.75))
        << w.describe() << " channels=" << channels;
  }
}

TEST_P(FuzzCase, SerializationRoundTrips) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2971 + 5);
  for (int i = 0; i < 10; ++i) {
    const Workload w = random_workload(rng);
    EXPECT_EQ(workload_from_string(workload_to_string(w)), w);
    const SlotCount channels = rng.uniform_int(1, min_channels(w));
    const PamadSchedule s = schedule_pamad(w, channels);
    EXPECT_EQ(program_from_string(program_to_string(s.program)), s.program);
  }
}

TEST_P(FuzzCase, RearrangementInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1299709 + 6);
  for (int i = 0; i < 10; ++i) {
    const auto count = static_cast<std::size_t>(rng.uniform_int(1, 60));
    std::vector<SlotCount> requested(count);
    for (auto& t : requested) t = rng.uniform_int(1, 500);
    const SlotCount c = rng.uniform_int(2, 4);
    const RearrangedWorkload plan = rearrange_expected_times(requested, c);

    EXPECT_EQ(plan.workload.total_pages(),
              static_cast<SlotCount>(count));
    for (std::size_t j = 0; j < count; ++j) {
      // Never rounded up; mapped page carries the assigned time.
      EXPECT_LE(plan.assigned_time[j], requested[j]);
      EXPECT_EQ(plan.workload.expected_time_of(plan.page_of_input[j]),
                plan.assigned_time[j]);
      // On the ladder anchored at the minimum requested time.
      const SlotCount t1 =
          *std::min_element(requested.begin(), requested.end());
      SlotCount v = plan.assigned_time[j];
      while (v > t1 && v % c == 0) v /= c;
      EXPECT_EQ(v, t1) << "assigned time off the ladder";
      // Rounding down by less than a full ladder step.
      EXPECT_GT(plan.assigned_time[j] * c, requested[j]);
    }
  }
}

TEST_P(FuzzCase, EdfCoversEveryPage) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 999331 + 7);
  for (int i = 0; i < 8; ++i) {
    const Workload w = random_workload(rng);
    const SlotCount channels = rng.uniform_int(1, min_channels(w));
    const EdfSchedule s = schedule_edf(w, channels);
    const AppearanceIndex idx(s.program, w.total_pages());
    for (PageId page = 0; page < w.total_pages(); ++page) {
      EXPECT_GE(idx.count(page), 1)
          << w.describe() << " channels=" << channels << " page=" << page;
    }
  }
}

TEST_P(FuzzCase, LossFreeChannelMatchesCleanSimulator) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7451 + 8);
  for (int i = 0; i < 6; ++i) {
    const Workload w = random_workload(rng);
    const SlotCount channels = rng.uniform_int(1, min_channels(w));
    const PamadSchedule s = schedule_pamad(w, channels);
    const std::uint64_t seed = rng();
    const LossySimResult lossy = simulate_lossy(
        s.program, w, LossModel::independent(0.0), 5000, seed);
    EXPECT_DOUBLE_EQ(lossy.avg_attempts, 1.0);
    EXPECT_DOUBLE_EQ(lossy.loss_rate, 0.0);
    // Mild loss can only make things worse.
    const LossySimResult degraded = simulate_lossy(
        s.program, w, LossModel::independent(0.3), 5000, seed);
    EXPECT_GE(degraded.avg_wait, lossy.avg_wait - 1e-9);
  }
}

TEST_P(FuzzCase, AirIndexProtocolInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 52361 + 9);
  for (int i = 0; i < 6; ++i) {
    const Workload w = random_workload(rng);
    const SlotCount channels = rng.uniform_int(1, min_channels(w));
    const PamadSchedule s = schedule_pamad(w, channels);
    IndexConfig config;
    config.strategy = rng.bernoulli(0.5) ? IndexStrategy::kOneM
                                         : IndexStrategy::kDedicated;
    config.fanout = rng.uniform_int(1, 16);
    config.replication = rng.uniform_int(1, 6);
    const IndexedBroadcast indexed(w, s.program, config);

    const auto cycle = static_cast<double>(indexed.cycle_length());
    for (int probe = 0; probe < 10; ++probe) {
      const auto page =
          static_cast<PageId>(rng.uniform_int(0, w.total_pages() - 1));
      const AccessOutcome outcome =
          indexed.access(page, rng.uniform_real(0.0, cycle));
      EXPECT_DOUBLE_EQ(outcome.tuning_time, 3.0);
      EXPECT_GE(outcome.latency, outcome.tuning_time - 1.0);
      // Latency is bounded by probe + one directory period + one cycle.
      EXPECT_LE(outcome.latency,
                2.0 + static_cast<double>(indexed.directory_slots()) +
                    2.0 * cycle)
          << w.describe() << " strategy "
          << index_strategy_name(config.strategy);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCase, ::testing::Range(0, 10));

}  // namespace
}  // namespace tcsa
