// egress_test.cpp — the zero-copy egress primitives: SharedBuf refcounts
// and unique-owner patching, OutQueue chunk accounting and O(1) retirement,
// vectored flush over a backpressured socketpair (partial-send resume and
// byte-exact ordering), and the queued-bytes eviction boundary.
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/framing.hpp"
#include "net/out_queue.hpp"
#include "net/shared_buf.hpp"
#include "net/socket.hpp"
#include "server/air_server.hpp"
#include "util/wire.hpp"

using namespace tcsa;

namespace {

// ------------------------------------------------------------- SharedBuf

TEST(SharedBuf, SharesBytesByReferenceAcrossCopies) {
  net::SharedBuf a = net::SharedBuf::wrap("broadcast");
  EXPECT_TRUE(a.unique());
  EXPECT_EQ(a.view(), "broadcast");

  net::SharedBuf b = a;
  EXPECT_EQ(a.use_count(), 2);
  EXPECT_EQ(b.data(), a.data()) << "copy must alias, not duplicate";

  net::SharedBuf null_buf;
  EXPECT_FALSE(static_cast<bool>(null_buf));
  EXPECT_EQ(null_buf.size(), 0u);
  EXPECT_FALSE(null_buf.patch_u64(0, 1));
}

TEST(SharedBuf, PatchRewritesTheWordOnlyForTheSoleOwner) {
  std::string bytes;
  wire_put_u64(bytes, 7);
  wire_put_u32(bytes, 0xdead);
  net::SharedBuf buf = net::SharedBuf::wrap(bytes);

  ASSERT_TRUE(buf.patch_u64(0, 42));
  WireReader patched(buf.view());
  EXPECT_EQ(patched.read_u64(), 42u);
  EXPECT_EQ(patched.read_u32(), 0xdeadu) << "bytes past the word intact";

  // A second handle (a session still queuing the buffer) blocks the patch
  // and leaves every byte untouched.
  net::SharedBuf queued = buf;
  EXPECT_FALSE(buf.patch_u64(0, 99));
  WireReader unchanged(queued.view());
  EXPECT_EQ(unchanged.read_u64(), 42u);

  queued = net::SharedBuf();  // queue drained: sole owner again
  EXPECT_TRUE(buf.patch_u64(0, 99));
}

// The frame-cache contract: reviving a cached kPage frame by patching its
// slot word produces the same bytes a fresh encode would — to the byte.
TEST(SharedBuf, PatchedPageFrameIsByteIdenticalToAFreshEncode) {
  const auto encode = [](std::uint64_t slot) {
    std::string payload;
    wire_put_u64(payload, slot);
    wire_put_u32(payload, 7);   // generation
    wire_put_u32(payload, 2);   // channel
    wire_put_u32(payload, 41);  // page
    std::string frame;
    net::append_frame(frame, net::FrameType::kPage, payload);
    return frame;
  };
  net::SharedBuf cached = net::SharedBuf::wrap(encode(100));
  ASSERT_TRUE(cached.patch_u64(net::kFrameHeaderSize, 4242));
  EXPECT_EQ(cached.view(), encode(4242));
}

// -------------------------------------------------------------- OutQueue

TEST(OutQueue, AccountsBytesAndIgnoresEmptyBuffers) {
  net::OutQueue queue;
  EXPECT_TRUE(queue.empty());
  queue.push(net::SharedBuf::wrap("abcd"));
  queue.push(net::SharedBuf::wrap(""));  // no zero-length iovecs
  queue.push(net::SharedBuf::wrap("efghij"));
  EXPECT_EQ(queue.chunks(), 2u);
  EXPECT_EQ(queue.bytes(), 10u);

  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.bytes(), 0u);
}

TEST(OutQueue, ConsumeRetiresWholeChunksInOrderAndAdvancesPartials) {
  net::OutQueue queue;
  queue.push(net::SharedBuf::wrap("aaaa"));    // 4
  queue.push(net::SharedBuf::wrap("bbbbbb"));  // 6
  queue.push(net::SharedBuf::wrap("cc"));      // 2

  // 4 + 3: the first chunk retires whole, the second goes partial.
  EXPECT_EQ(queue.consume(7), 4u);
  EXPECT_EQ(queue.chunks(), 2u);
  EXPECT_EQ(queue.bytes(), 5u);
  EXPECT_EQ(queue.front().offset, 3u);
  EXPECT_EQ(queue.front().buf.view(), "bbbbbb");

  // The partial chunk's remaining 3 bytes retire its FULL size (each
  // chunk's bytes are reported exactly once, at final retirement).
  EXPECT_EQ(queue.consume(3), 6u);
  EXPECT_EQ(queue.front().buf.view(), "cc");
  EXPECT_EQ(queue.consume(2), 2u);
  EXPECT_TRUE(queue.empty());
}

TEST(OutQueue, GatherIsBoundedAndSkipsSentPrefixes) {
  net::OutQueue queue;
  for (int i = 0; i < 10; ++i)
    queue.push(net::SharedBuf::wrap(std::string(8, static_cast<char>('a' + i))));
  queue.consume(3);  // front chunk now partial

  iovec iov[4];
  ASSERT_EQ(queue.gather(iov, 4), 4u);
  EXPECT_EQ(iov[0].iov_len, 5u) << "front iovec starts at the unsent offset";
  EXPECT_EQ(std::string(static_cast<const char*>(iov[0].iov_base), 5),
            "aaaaa");
  EXPECT_EQ(iov[1].iov_len, 8u);

  iovec all[64];
  EXPECT_EQ(queue.gather(all, 64), 10u);
}

// ------------------------------------------------- vectored flush + resume

struct SocketPair {
  net::Fd writer;
  net::Fd reader;
};

SocketPair make_pair_with_sndbuf(int sndbuf_bytes) {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  SocketPair pair{net::Fd(fds[0]), net::Fd(fds[1])};
  net::set_nonblocking(pair.writer.get(), true);
  net::set_nonblocking(pair.reader.get(), true);
  if (sndbuf_bytes > 0) net::set_send_buffer(pair.writer.get(), sndbuf_bytes);
  return pair;
}

std::string read_up_to(int fd, std::size_t cap) {
  std::string out;
  std::vector<char> buffer(4096);
  while (out.size() < cap) {
    const ssize_t n = ::recv(fd, buffer.data(),
                             std::min(buffer.size(), cap - out.size()), 0);
    if (n > 0) {
      out.append(buffer.data(), static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EAGAIN or EOF
  }
  return out;
}

TEST(FlushQueue, DrainsAWholeBacklogThroughBoundedIovecBatches) {
  SocketPair pair = make_pair_with_sndbuf(1 << 20);
  net::OutQueue queue;
  std::string expected;
  // More chunks than one sendmsg batch may carry, to exercise the bound.
  const std::size_t chunk_count = net::kFlushBatch * 2 + 17;
  for (std::size_t i = 0; i < chunk_count; ++i) {
    std::string chunk(32, static_cast<char>('A' + (i % 26)));
    expected += chunk;
    queue.push(net::SharedBuf::wrap(std::move(chunk)));
  }

  const net::FlushResult result = net::flush_queue(pair.writer.get(), queue);
  EXPECT_EQ(result.error, 0);
  EXPECT_FALSE(result.would_block);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(result.bytes_sent, expected.size());
  EXPECT_EQ(result.bytes_retired, expected.size());
  // ceil(chunks / batch) syscalls, not one per chunk.
  EXPECT_LE(result.syscalls,
            (chunk_count + net::kFlushBatch - 1) / net::kFlushBatch);
  EXPECT_EQ(result.eagain_calls, 0u) << "no probes on an unblocked drain";
  EXPECT_EQ(read_up_to(pair.reader.get(), expected.size()), expected);
}

TEST(FlushQueue, PartialSendResumesInOrderAcrossATinySendBuffer) {
  SocketPair pair = make_pair_with_sndbuf(4096);
  net::OutQueue queue;
  std::string expected;
  for (std::size_t i = 0; i < 64; ++i) {
    std::string chunk(4096, static_cast<char>('a' + (i % 26)));
    expected += chunk;
    queue.push(net::SharedBuf::wrap(std::move(chunk)));
  }

  // First flush hits backpressure: the kernel accepts a prefix and the
  // queue keeps exactly the rest, bytes() matching to the byte.
  const net::FlushResult first = net::flush_queue(pair.writer.get(), queue);
  EXPECT_EQ(first.error, 0);
  ASSERT_TRUE(first.would_block) << "SO_SNDBUF too large to backpressure";
  ASSERT_FALSE(queue.empty());
  EXPECT_EQ(queue.bytes(), expected.size() - first.bytes_sent);
  EXPECT_GE(first.bytes_sent, first.bytes_retired)
      << "a partially sent chunk must not count as retired";

  // Drain reader and flush alternately; the reassembled stream must be
  // byte-identical to the chunks in push order (retirement never reorders
  // or re-sends across partial boundaries).
  std::string received;
  std::size_t flushes = 0;
  while (received.size() < expected.size()) {
    received += read_up_to(pair.reader.get(), expected.size());
    if (!queue.empty()) {
      const net::FlushResult r = net::flush_queue(pair.writer.get(), queue);
      ASSERT_EQ(r.error, 0);
      ++flushes;
    }
    ASSERT_LT(flushes, 10'000u) << "no forward progress";
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(received, expected);
}

// The split ledger: productive calls and would-block probes never land in
// the same counter, so syscalls-per-flushed-byte stays honest for a
// session that probes a full socket every slot.
TEST(FlushQueue, LedgersWouldBlockProbesSeparatelyFromProductiveCalls) {
  SocketPair pair = make_pair_with_sndbuf(4096);
  net::OutQueue queue;
  for (int i = 0; i < 64; ++i)
    queue.push(net::SharedBuf::wrap(std::string(4096, 'x')));

  // The flush that fills the socket: some productive calls, then exactly
  // one refused probe ends the drain.
  const net::FlushResult first = net::flush_queue(pair.writer.get(), queue);
  ASSERT_TRUE(first.would_block) << "SO_SNDBUF too large to backpressure";
  EXPECT_GT(first.syscalls, 0u);
  EXPECT_EQ(first.eagain_calls, 1u);

  // The socket is still full: re-flushing is pure probe overhead — zero
  // productive calls, zero bytes, one EAGAIN.
  const net::FlushResult probe = net::flush_queue(pair.writer.get(), queue);
  EXPECT_TRUE(probe.would_block);
  EXPECT_EQ(probe.bytes_sent, 0u);
  EXPECT_EQ(probe.syscalls, 0u);
  EXPECT_EQ(probe.eagain_calls, 1u);
}

TEST(FlushQueue, ReportsAFatalErrorAndLeavesTheQueueIntact) {
  SocketPair pair = make_pair_with_sndbuf(0);
  net::OutQueue queue;
  queue.push(net::SharedBuf::wrap("doomed"));
  pair.reader.reset();  // peer gone: EPIPE, suppressed signal

  const net::FlushResult result = net::flush_queue(pair.writer.get(), queue);
  EXPECT_EQ(result.error, EPIPE);
  EXPECT_EQ(result.bytes_sent, 0u);
  EXPECT_EQ(result.syscalls, 1u) << "a fatal call is productive-path, not a probe";
  EXPECT_EQ(result.eagain_calls, 0u);
  EXPECT_EQ(queue.bytes(), 6u) << "fatal error must not drop queued bytes";
}

// ------------------------------------------------------ eviction boundary

TEST(Eviction, FiresStrictlyAboveTheQueuedBytesCap) {
  constexpr std::size_t cap = 2048;
  EXPECT_FALSE(should_evict(0, cap));
  EXPECT_FALSE(should_evict(cap - 1, cap));
  EXPECT_FALSE(should_evict(cap, cap)) << "exactly at the cap stays";
  EXPECT_TRUE(should_evict(cap + 1, cap));
  EXPECT_FALSE(should_evict(0, 0));
  EXPECT_TRUE(should_evict(1, 0));
}

}  // namespace
