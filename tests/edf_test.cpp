// Tests for the online EDF baseline and for the theory module
// (waterfilling lower bound, capacity planning).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/channel_bound.hpp"
#include "core/delay_model.hpp"
#include "core/edf.hpp"
#include "core/opt.hpp"
#include "core/pamad.hpp"
#include "core/theory.hpp"
#include "model/appearance_index.hpp"
#include "sim/broadcast_sim.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

// ---------------------------------------------------------------------- EDF

TEST(Edf, EveryPageAppears) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const EdfSchedule s = schedule_edf(w, 2);
  const AppearanceIndex idx(s.program, w.total_pages());
  for (PageId page = 0; page < w.total_pages(); ++page)
    EXPECT_GE(idx.count(page), 1) << "page " << page;
}

TEST(Edf, WorkConservingFillsEverySlot) {
  const Workload w = make_workload({2, 4}, {3, 5});
  const EdfSchedule s = schedule_edf(w, 2);
  EXPECT_EQ(s.program.occupied(), s.program.capacity());
}

TEST(Edf, MoreChannelsThanPagesLeavesIdleSlots) {
  const Workload w = make_workload({4}, {2});
  const EdfSchedule s = schedule_edf(w, 3);
  // Each column broadcasts at most one copy of each page.
  EXPECT_LE(s.program.column_load(0), 3);
}

TEST(Edf, OverSubscribedWindowStillCoversAllPages) {
  // n >> t_h * channels: the window extension logic must kick in.
  const Workload w = make_workload({2, 4}, {40, 60});
  const EdfSchedule s = schedule_edf(w, 1);
  EXPECT_GE(s.program.cycle_length(), 100);
  const AppearanceIndex idx(s.program, w.total_pages());
  for (PageId page = 0; page < w.total_pages(); ++page)
    EXPECT_GE(idx.count(page), 1);
}

TEST(Edf, TighterDeadlinesGetMoreAir) {
  const Workload w = make_workload({2, 8}, {2, 2});
  const EdfSchedule s = schedule_edf(w, 1);
  const AppearanceIndex idx(s.program, w.total_pages());
  // A t=2 page must air roughly 4x as often as a t=8 page.
  EXPECT_GT(idx.count(0), 2 * idx.count(3));
}

TEST(Edf, DeterministicAcrossRuns) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  EXPECT_EQ(schedule_edf(w, 2).program, schedule_edf(w, 2).program);
}

TEST(Edf, RejectsBadArguments) {
  const Workload w = make_workload({2}, {1});
  EXPECT_THROW(schedule_edf(w, 0), std::invalid_argument);
  EXPECT_THROW(schedule_edf(w, 1, 0), std::invalid_argument);
}

TEST(Edf, PamadBeatsEdfBelowTheBound) {
  // The offline optimisation must beat the myopic greedy when bandwidth is
  // scarce — that is the point of including the baseline.
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 6, 300, 4, 2);
  const SlotCount channels = min_channels(w) / 4;
  const PamadSchedule pamad = schedule_pamad(w, channels);
  const EdfSchedule edf = schedule_edf(w, channels);
  SimConfig sim;
  sim.requests.count = 20000;
  const double pamad_delay =
      simulate_requests(pamad.program, w, sim).avg_delay;
  const double edf_delay = simulate_requests(edf.program, w, sim).avg_delay;
  EXPECT_LT(pamad_delay, edf_delay);
}

// ------------------------------------------------------------------- theory

TEST(Theory, SufficientChannelsMeanZeroLevel) {
  const Workload w = make_workload({2, 4}, {2, 3});
  EXPECT_DOUBLE_EQ(waterfilling_level(w, min_channels(w)), 0.0);
  EXPECT_TRUE(waterfilling_spacings(w, min_channels(w)).empty());
  EXPECT_DOUBLE_EQ(continuous_delay_lower_bound(w, min_channels(w)), 0.0);
}

TEST(Theory, SpacingsSatisfyBandwidthConstraint) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 6, 300, 4, 2);
  for (const SlotCount channels : {1, 3, 7}) {
    const auto g = waterfilling_spacings(w, channels);
    ASSERT_FALSE(g.empty());
    double demand = 0.0;
    for (GroupId i = 0; i < w.group_count(); ++i)
      demand += static_cast<double>(w.pages_in_group(i)) /
                g[static_cast<std::size_t>(i)];
    EXPECT_NEAR(demand, static_cast<double>(channels), 1e-6);
  }
}

TEST(Theory, SpacingsFollowSqrtLaw) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 6, 300, 4, 2);
  const double theta = waterfilling_level(w, 3);
  ASSERT_GT(theta, 0.0);
  const auto g = waterfilling_spacings(w, 3);
  for (GroupId i = 0; i < w.group_count(); ++i) {
    const auto t = static_cast<double>(w.expected_time(i));
    EXPECT_NEAR(g[static_cast<std::size_t>(i)], std::sqrt(t * t + theta),
                1e-9);
  }
}

TEST(Theory, LowerBoundsEveryIntegerAssignment) {
  const Workload w = make_paper_workload(GroupSizeShape::kNormal, 6, 300, 4, 2);
  for (const SlotCount channels : {1, 2, 5, 9}) {
    const double bound = continuous_delay_lower_bound(w, channels);
    const double opt =
        opt_frequencies_unconstrained(w, channels).predicted_delay;
    const double pamad = pamad_frequencies(w, channels).predicted_delay;
    EXPECT_LE(bound, opt + 1e-9) << "channels=" << channels;
    EXPECT_LE(bound, pamad + 1e-9) << "channels=" << channels;
    // The bound is tight-ish: OPT gets within 25% + a small absolute slack
    // (integer frequencies and ceil() keep it from touching).
    EXPECT_LE(opt, bound * 1.25 + 0.5) << "channels=" << channels;
  }
}

TEST(Theory, BoundDecreasesWithChannels) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 6, 300, 4, 2);
  double last = std::numeric_limits<double>::infinity();
  for (SlotCount channels = 1; channels <= min_channels(w); ++channels) {
    const double bound = continuous_delay_lower_bound(w, channels);
    EXPECT_LE(bound, last + 1e-12);
    last = bound;
  }
}

TEST(Theory, ChannelsForBudgetBrackets) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform);
  // Zero budget -> the full Theorem 3.1 bound.
  EXPECT_EQ(channels_for_delay_budget(w, 0.0), min_channels(w));
  // Huge budget -> a single channel suffices.
  EXPECT_EQ(channels_for_delay_budget(w, 1e9), 1);
  // Intermediate budgets give the smallest count under budget.
  const SlotCount chosen = channels_for_delay_budget(w, 2.0);
  EXPECT_LE(continuous_delay_lower_bound(w, chosen), 2.0);
  if (chosen > 1) {
    EXPECT_GT(continuous_delay_lower_bound(w, chosen - 1), 2.0);
  }
}

TEST(Theory, RejectsBadArguments) {
  const Workload w = make_workload({2}, {1});
  EXPECT_THROW(waterfilling_level(w, 0), std::invalid_argument);
  EXPECT_THROW(channels_for_delay_budget(w, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace tcsa
