// Tests for the multi-item, staleness and channel-switching extensions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/channel_bound.hpp"
#include "core/mpb.hpp"
#include "core/pamad.hpp"
#include "core/susc.hpp"
#include "sim/multi_item.hpp"
#include "sim/staleness.hpp"
#include "sim/switching.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

// --------------------------------------------------------------- multi item

TEST(MultiItem, SingleItemMatchesDeadlineGuarantee) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram p = schedule_susc(w);
  MultiItemConfig config;
  config.items_per_request = 1;
  config.requests = 4000;
  const MultiItemResult r = simulate_multi_item(p, w, config);
  EXPECT_DOUBLE_EQ(r.all_in_time_rate, 1.0);  // valid program, k = 1
  EXPECT_DOUBLE_EQ(r.avg_bundle_delay, 0.0);
}

TEST(MultiItem, ValidProgramSatisfiesAnyBundle) {
  // Every page individually within deadline -> every bundle within too.
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram p = schedule_susc(w);
  MultiItemConfig config;
  config.items_per_request = 5;
  config.requests = 2000;
  const MultiItemResult r = simulate_multi_item(p, w, config);
  EXPECT_DOUBLE_EQ(r.all_in_time_rate, 1.0);
}

TEST(MultiItem, BiggerBundlesWaitLongerAndMissMore) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 5, 200, 4, 2);
  const PamadSchedule s = schedule_pamad(w, 4);
  double last_completion = 0.0;
  double last_in_time = 1.1;
  for (const SlotCount k : {1, 2, 4, 8}) {
    MultiItemConfig config;
    config.items_per_request = k;
    config.requests = 4000;
    const MultiItemResult r = simulate_multi_item(s.program, w, config);
    EXPECT_GT(r.avg_completion, last_completion) << "k=" << k;
    EXPECT_LT(r.all_in_time_rate, last_in_time) << "k=" << k;
    last_completion = r.avg_completion;
    last_in_time = r.all_in_time_rate;
  }
}

TEST(MultiItem, PamadStillBeatsMpbOnBundles) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 5, 200, 4, 2);
  const SlotCount channels = min_channels(w) / 3;
  MultiItemConfig config;
  config.items_per_request = 3;
  config.requests = 4000;
  const MultiItemResult rp =
      simulate_multi_item(schedule_pamad(w, channels).program, w, config);
  const MultiItemResult rm =
      simulate_multi_item(schedule_mpb(w, channels).program, w, config);
  EXPECT_LT(rp.avg_bundle_delay, rm.avg_bundle_delay);
  EXPECT_GT(rp.all_in_time_rate, rm.all_in_time_rate);
}

TEST(MultiItem, RejectsBadConfig) {
  const Workload w = make_workload({2}, {2});
  BroadcastProgram p(1, 2);
  p.place(0, 0, 0);
  p.place(0, 1, 1);
  MultiItemConfig config;
  config.items_per_request = 3;  // > population
  EXPECT_THROW(simulate_multi_item(p, w, config), std::invalid_argument);
  config.items_per_request = 0;
  EXPECT_THROW(simulate_multi_item(p, w, config), std::invalid_argument);
}

// ---------------------------------------------------------------- staleness

TEST(Staleness, ClosedFormLimits) {
  // u g -> 0: fraction -> u g / 2 (first order). u g -> inf: fraction -> 1.
  EXPECT_NEAR(stale_fraction_for_gap(1.0, 0.01), 0.005, 1e-4);
  EXPECT_NEAR(stale_fraction_for_gap(100.0, 10.0), 1.0, 1e-2);
  EXPECT_THROW(stale_fraction_for_gap(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(stale_fraction_for_gap(1.0, 0.0), std::invalid_argument);
}

TEST(Staleness, EvenSpacingMatchesClosedForm) {
  const Workload w = make_workload({4}, {1});
  BroadcastProgram p(1, 12);
  for (const SlotCount s : {0, 4, 8}) p.place(0, s, 0);  // even gap 4
  const AppearanceIndex idx(p, 1);
  for (const double u : {0.05, 0.2, 1.0}) {
    EXPECT_NEAR(expected_stale_fraction(idx, 0, u),
                stale_fraction_for_gap(4.0, u), 1e-12)
        << "u=" << u;
  }
}

TEST(Staleness, MonteCarloAgreesWithAnalytic) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const PamadSchedule s = schedule_pamad(w, 3);
  const AppearanceIndex idx(s.program, w.total_pages());
  for (const PageId page : {0u, 5u, 10u}) {
    const double analytic = expected_stale_fraction(idx, page, 0.1);
    const double simulated =
        simulate_stale_fraction(idx, page, 0.1, 4000, 13);
    EXPECT_NEAR(simulated, analytic, 0.02) << "page " << page;
  }
}

TEST(Staleness, MoreFrequentBroadcastIsFresher) {
  // SUSC at the bound rebroadcasts tight-deadline pages more often; their
  // copies stay fresher at equal update rates.
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram p = schedule_susc(w);
  const AppearanceIndex idx(p, w.total_pages());
  const double tight = expected_stale_fraction(idx, 0, 0.2);   // t = 2
  const double loose = expected_stale_fraction(idx, 10, 0.2);  // t = 8
  EXPECT_LT(tight, loose);
}

TEST(Staleness, HigherUpdateRateIsStaler) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const PamadSchedule s = schedule_pamad(w, 3);
  double last = 0.0;
  for (const double u : {0.01, 0.1, 1.0}) {
    const StalenessResult r = evaluate_staleness(s.program, w, u);
    EXPECT_GT(r.avg_stale_fraction, last);
    EXPECT_GE(r.worst_stale_fraction, r.avg_stale_fraction);
    last = r.avg_stale_fraction;
  }
}

// ---------------------------------------------------------------- switching

TEST(Switching, ZeroCostMatchesPlainIndex) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram p = schedule_susc(w);
  const ChannelAppearanceIndex channel_idx(p, w.total_pages());
  const AppearanceIndex idx(p, w.total_pages());
  for (PageId page = 0; page < w.total_pages(); ++page) {
    for (const double arrival : {0.0, 1.7, 5.2}) {
      const TunedAccess access = tuned_wait(channel_idx, page, arrival, 0, 0.0);
      EXPECT_DOUBLE_EQ(access.wait, idx.wait_after(page, arrival))
          << "page " << page << " arrival " << arrival;
    }
  }
}

TEST(Switching, SameChannelNeedsNoRetune) {
  const Workload w = make_workload({2}, {1});
  BroadcastProgram p(2, 4);
  p.place(0, 0, 0);
  p.place(0, 2, 0);
  const ChannelAppearanceIndex idx(p, 1);
  // Client tuned to channel 0 catches the page directly even with a huge
  // switch cost: next completion on its own channel is at time 1.
  const TunedAccess access = tuned_wait(idx, 0, 0.5, 0, 100.0);
  EXPECT_FALSE(access.switched);
  EXPECT_DOUBLE_EQ(access.wait, 0.5);
}

TEST(Switching, RetuneDelaysCrossChannelCatch) {
  const Workload w = make_workload({8}, {1});
  BroadcastProgram p(2, 8);
  p.place(1, 2, 0);  // only on channel 1, starts at 2, completes at 3
  const ChannelAppearanceIndex idx(p, 1);
  // Tuned to 0, arrival 0: with cost <= 2 the slot at start=2 is caught.
  EXPECT_DOUBLE_EQ(tuned_wait(idx, 0, 0.0, 0, 2.0).wait, 3.0);
  EXPECT_TRUE(tuned_wait(idx, 0, 0.0, 0, 2.0).switched);
  // With cost 3 the client misses it and waits a whole cycle.
  EXPECT_DOUBLE_EQ(tuned_wait(idx, 0, 0.0, 0, 3.0).wait, 11.0);
}

TEST(Switching, HugeCostFallsBackAcrossCycles) {
  const Workload w = make_workload({4}, {1});
  BroadcastProgram p(2, 4);
  p.place(1, 0, 0);  // starts at 0; unreachable this cycle from channel 0
  const ChannelAppearanceIndex idx(p, 1);
  const TunedAccess access = tuned_wait(idx, 0, 0.0, 0, 9.0);
  // Next reachable start: 0 + k*4 >= 9 -> k = 3 -> completion 13.
  EXPECT_DOUBLE_EQ(access.wait, 13.0);
}

TEST(Switching, WaitGrowsWithSwitchCost) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 5, 200, 4, 2);
  const PamadSchedule s = schedule_pamad(w, 6);
  double last = -1.0;
  for (const double cost : {0.0, 1.0, 4.0, 16.0}) {
    const SwitchingResult r =
        simulate_switching(s.program, w, cost, 10000, 31);
    EXPECT_GE(r.avg_wait, last) << "cost " << cost;
    last = r.avg_wait;
  }
}

TEST(Switching, MultiChannelClientsMostlySwitch) {
  // With many channels and one tuner, most catches are off-channel.
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 5, 200, 4, 2);
  const PamadSchedule s = schedule_pamad(w, 8);
  const SwitchingResult r = simulate_switching(s.program, w, 1.0, 10000, 7);
  EXPECT_GT(r.switch_rate, 0.5);
}

TEST(Switching, RejectsBadArguments) {
  const Workload w = make_workload({2}, {1});
  BroadcastProgram p(1, 2);
  p.place(0, 0, 0);
  const ChannelAppearanceIndex idx(p, 1);
  EXPECT_THROW(tuned_wait(idx, 0, 0.0, 0, -1.0), std::invalid_argument);
  EXPECT_THROW(tuned_wait(idx, 0, 0.0, 5, 0.0), std::invalid_argument);
  EXPECT_THROW(simulate_switching(p, w, 0.0, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace tcsa
