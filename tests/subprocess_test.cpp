// subprocess_test.cpp — the fork/exec wrapper behind sharded sweeps.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "util/subprocess.hpp"

using namespace tcsa;

namespace {

std::string temp_path(const char* stem) {
  return testing::TempDir() + "/tcsa_subprocess_" + stem + "_" +
         std::to_string(::testing::UnitTest::GetInstance()->random_seed());
}

TEST(Subprocess, PropagatesExitCodes) {
  EXPECT_EQ(run_command({"true"}), 0);
  EXPECT_EQ(run_command({"false"}), 1);
  EXPECT_EQ(run_command({"sh", "-c", "exit 7"}), 7);
}

TEST(Subprocess, ExecFailureYields127) {
  EXPECT_EQ(run_command({"/nonexistent/definitely-not-a-binary"}), 127);
}

TEST(Subprocess, RedirectsStdoutAndStderr) {
  const std::string out_path = temp_path("out");
  const std::string err_path = temp_path("err");
  SpawnOptions options;
  options.stdout_path = out_path;
  options.stderr_path = err_path;
  ASSERT_EQ(run_command({"sh", "-c", "echo front; echo back >&2"}, options), 0);

  std::ifstream out(out_path), err(err_path);
  std::string out_line, err_line;
  std::getline(out, out_line);
  std::getline(err, err_line);
  EXPECT_EQ(out_line, "front");
  EXPECT_EQ(err_line, "back");
  std::remove(out_path.c_str());
  std::remove(err_path.c_str());
}

TEST(Subprocess, RedirectsStdin) {
  const std::string in_path = temp_path("in");
  const std::string out_path = temp_path("cat");
  { std::ofstream(in_path) << "payload\n"; }
  SpawnOptions options;
  options.stdin_path = in_path;
  options.stdout_path = out_path;
  ASSERT_EQ(run_command({"cat"}, options), 0);
  std::ifstream out(out_path);
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line, "payload");
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(Subprocess, ChildrenRunConcurrently) {
  // Two 0.2 s sleeps spawned before either is awaited; both must report 0.
  Subprocess a = Subprocess::spawn({"sleep", "0.2"});
  Subprocess b = Subprocess::spawn({"sleep", "0.2"});
  EXPECT_GT(a.pid(), 0);
  EXPECT_GT(b.pid(), 0);
  EXPECT_NE(a.pid(), b.pid());
  EXPECT_EQ(a.wait(), 0);
  EXPECT_EQ(b.wait(), 0);
  EXPECT_TRUE(a.reaped());
  EXPECT_EQ(a.wait(), 0);  // idempotent after reaping
}

TEST(Subprocess, WaitReportsSignalDeath) {
  const int rc = run_command({"sh", "-c", "kill -KILL $$"});
  EXPECT_EQ(rc, 128 + 9);
}

TEST(Subprocess, SelfExecutablePathResolves) {
  const std::string self = self_executable_path("fallback");
  EXPECT_NE(self, "fallback");
  EXPECT_NE(self.find("test_subprocess"), std::string::npos);
}

}  // namespace
