// Tests for src/util: RNG determinism and distributions, statistics,
// tables, CLI parsing, logging, contracts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/cli.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace tcsa {
namespace {

// ---------------------------------------------------------------- contracts

TEST(Contracts, RequireThrowsInvalidArgument) {
  EXPECT_THROW(TCSA_REQUIRE(false, "boom"), std::invalid_argument);
}

TEST(Contracts, AssertThrowsLogicError) {
  EXPECT_THROW(TCSA_ASSERT(false, "boom"), std::logic_error);
}

TEST(Contracts, PassingChecksDoNothing) {
  EXPECT_NO_THROW(TCSA_REQUIRE(true, ""));
  EXPECT_NO_THROW(TCSA_ASSERT(1 + 1 == 2, ""));
}

TEST(Contracts, MessageIsPropagated) {
  try {
    TCSA_REQUIRE(false, "the specific reason");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("the specific reason"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------- rng

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntRejectsEmptyRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i)
    ++counts[rng.uniform_int(0, kBuckets - 1)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(5);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform01());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(17);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeSigma) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(19);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(0.5));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, BernoulliRejectsOutOfRangeP) {
  Rng rng(1);
  EXPECT_THROW(rng.bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW(rng.bernoulli(1.1), std::invalid_argument);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(29);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 40000.0, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, ForkedChildrenAreIndependentAndDeterministic) {
  Rng parent1(99), parent2(99);
  Rng childA1 = parent1.fork(1);
  Rng childA2 = parent2.fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(childA1(), childA2());

  Rng parent3(99);
  Rng c1 = parent3.fork(1);
  Rng parent4(99);
  Rng c2 = parent4.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (c1() == c2()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(DiscreteSampler, MatchesWeightsStatistically) {
  Rng rng(31);
  const DiscreteSampler sampler({1.0, 2.0, 3.0, 4.0});
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.sample(rng)];
  for (int k = 0; k < 4; ++k)
    EXPECT_NEAR(counts[k] / static_cast<double>(kDraws), (k + 1) / 10.0, 0.01);
}

TEST(DiscreteSampler, ZeroWeightNeverSampled) {
  Rng rng(37);
  const DiscreteSampler sampler({0.0, 1.0, 0.0});
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(sampler.sample(rng), 1u);
}

TEST(DiscreteSampler, SingleBucket) {
  Rng rng(37);
  const DiscreteSampler sampler({5.0});
  EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(DiscreteSampler, RejectsDegenerateWeights) {
  EXPECT_THROW(DiscreteSampler({}), std::invalid_argument);
  EXPECT_THROW(DiscreteSampler({0.0}), std::invalid_argument);
  EXPECT_THROW(DiscreteSampler({-1.0, 2.0}), std::invalid_argument);
}

TEST(ZipfWeights, ThetaZeroIsUniform) {
  const auto w = zipf_weights(5, 0.0);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(ZipfWeights, DecreasingInRank) {
  const auto w = zipf_weights(10, 0.8);
  for (std::size_t i = 1; i < w.size(); ++i) EXPECT_LT(w[i], w[i - 1]);
}

TEST(ZipfWeights, RejectsBadArgs) {
  EXPECT_THROW(zipf_weights(0, 1.0), std::invalid_argument);
  EXPECT_THROW(zipf_weights(5, -1.0), std::invalid_argument);
}

// -------------------------------------------------------------------- stats

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats all, left, right;
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    all.add(v);
    (i < 500 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats s, empty;
  s.add(1.0);
  s.add(3.0);
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  empty.merge(s);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(OnlineStats, MergeEmptyIntoEmptyStaysEmpty) {
  OnlineStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(OnlineStats, MergeNonEmptyIntoEmptyCopiesExtremes) {
  // The Chan update divides by the combined count; an empty left side must
  // adopt the right side's min/max rather than its zero-initialised fields.
  OnlineStats empty, s;
  s.add(-7.0);
  s.add(13.0);
  empty.merge(s);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
  EXPECT_DOUBLE_EQ(empty.min(), -7.0);
  EXPECT_DOUBLE_EQ(empty.max(), 13.0);
  EXPECT_NEAR(empty.variance(), 200.0, 1e-12);  // ((-10)^2 + 10^2) / (2-1)
}

TEST(OnlineStats, SingleSampleVarianceIsZero) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);  // unbiased: undefined below 2 samples
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, MergeTwoSingletonsMatchesSequential) {
  // Edge of the Chan update: both sides have m2 == 0, so the whole variance
  // comes from the cross term.
  OnlineStats a, b, all;
  a.add(2.0);
  b.add(6.0);
  all.add(2.0);
  all.add(6.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_DOUBLE_EQ(a.variance(), all.variance());
  EXPECT_DOUBLE_EQ(a.variance(), 8.0);  // ((2-4)^2 + (6-4)^2) / 1
}

TEST(SampleSet, QuantilesExact) {
  SampleSet s;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.3), 3.0);
}

TEST(SampleSet, AddAfterQuantileResorts) {
  SampleSet s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 3.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
}

TEST(SampleSet, EmptyThrows) {
  SampleSet s;
  EXPECT_THROW(s.mean(), std::invalid_argument);
  EXPECT_THROW(s.quantile(0.5), std::invalid_argument);
}

TEST(Reservoir, RetainsEverythingUnderCapacity) {
  Rng rng(43);
  Reservoir r(100, rng);
  for (int i = 0; i < 50; ++i) r.add(i);
  EXPECT_EQ(r.seen(), 50u);
  EXPECT_DOUBLE_EQ(r.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(r.quantile(1.0), 49.0);
}

TEST(Reservoir, ApproximatesQuantilesOverCapacity) {
  Rng rng(47);
  Reservoir r(2000, rng);
  for (int i = 0; i < 100000; ++i) r.add(rng.uniform01());
  EXPECT_NEAR(r.quantile(0.5), 0.5, 0.05);
  EXPECT_NEAR(r.quantile(0.9), 0.9, 0.05);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bucket 0
  h.add(9.5);   // bucket 9
  h.add(-5.0);  // clamps to 0
  h.add(15.0);  // clamps to 9
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 4.0);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('\n'), std::string::npos);
}

// -------------------------------------------------------------------- table

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.begin_row().add("alpha").add(std::int64_t{1});
  t.begin_row().add("b").add(22.5, 1);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.begin_row().add("plain").add("with,comma");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
}

TEST(Table, CsvQuotesQuotes) {
  Table t({"a"});
  t.begin_row().add("say \"hi\"");
  EXPECT_NE(t.to_csv().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, MarkdownShape) {
  Table t({"x", "y"});
  t.begin_row().add(1).add(2);
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| x | y |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(Table, CellAccess) {
  Table t({"a", "b"});
  t.begin_row().add("u").add("v");
  EXPECT_EQ(t.cell(0, 1), "v");
  EXPECT_THROW(t.cell(1, 0), std::invalid_argument);
  EXPECT_THROW(t.cell(0, 2), std::invalid_argument);
}

TEST(Table, OverfilledRowThrows) {
  Table t({"only"});
  t.begin_row().add("x");
  EXPECT_THROW(t.add("y"), std::invalid_argument);
}

TEST(Table, IncompleteRowDetectedOnNextBeginRow) {
  Table t({"a", "b"});
  t.begin_row().add("x");
  EXPECT_THROW(t.begin_row(), std::invalid_argument);
}

TEST(Table, DoublePrecisionControl) {
  Table t({"v"});
  t.begin_row().add(1.23456, 2);
  EXPECT_EQ(t.cell(0, 0), "1.23");
}

// ---------------------------------------------------------------------- cli

TEST(Cli, ParsesAllForms) {
  Cli cli("prog", "test");
  cli.add_int("count", 10, "a count");
  cli.add_double("rate", 0.5, "a rate");
  cli.add_string("mode", "fast", "a mode");
  cli.add_flag("verbose", "talk more");
  const char* argv[] = {"prog", "--count", "42", "--rate=1.25", "--verbose",
                        "--mode", "slow"};
  ASSERT_TRUE(cli.parse(7, argv));
  EXPECT_EQ(cli.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 1.25);
  EXPECT_EQ(cli.get_string("mode"), "slow");
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, DefaultsSurviveEmptyArgv) {
  Cli cli("prog", "test");
  cli.add_int("count", 10, "a count");
  cli.add_flag("verbose", "talk");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("count"), 10);
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, UnknownOptionThrows) {
  Cli cli("prog", "test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, MalformedIntThrows) {
  Cli cli("prog", "test");
  cli.add_int("n", 1, "n");
  const char* argv[] = {"prog", "--n", "abc"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  Cli cli("prog", "test");
  cli.add_int("n", 1, "n");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, FlagWithValueThrows) {
  Cli cli("prog", "test");
  cli.add_flag("f", "flag");
  const char* argv[] = {"prog", "--f=1"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, HelpReturnsFalseAndLists) {
  Cli cli("prog", "summary text");
  cli.add_int("n", 1, "the n option");
  const char* argv[] = {"prog", "--help"};
  testing::internal::CaptureStdout();
  EXPECT_FALSE(cli.parse(2, argv));
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("summary text"), std::string::npos);
  EXPECT_NE(out.find("--n"), std::string::npos);
}

// ---------------------------------------------------------------------- log

TEST(Log, RespectsLevelAndSink) {
  std::ostringstream sink;
  set_log_sink(&sink);
  set_log_level(LogLevel::kWarn);
  TCSA_LOG(kDebug) << "hidden";
  TCSA_LOG(kWarn) << "visible " << 42;
  set_log_sink(nullptr);
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(sink.str().find("hidden"), std::string::npos);
  EXPECT_NE(sink.str().find("visible 42"), std::string::npos);
  EXPECT_NE(sink.str().find("WARN"), std::string::npos);
}

TEST(Log, OffSilencesEverything) {
  std::ostringstream sink;
  set_log_sink(&sink);
  set_log_level(LogLevel::kOff);
  TCSA_LOG(kError) << "nope";
  set_log_sink(nullptr);
  set_log_level(LogLevel::kWarn);
  EXPECT_TRUE(sink.str().empty());
}

TEST(Log, ConcurrentEmittersNeverInterleaveLines) {
  // Regression: emit() used to stream the prefix and message as separate
  // operator<< calls, so lines from work-pool threads could interleave
  // piecewise. Hammer the sink from 8 threads and assert every emitted
  // line survives whole.
  std::ostringstream sink;
  set_log_sink(&sink);
  set_log_level(LogLevel::kInfo);
  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i)
        TCSA_LOG(kInfo) << "thread " << t << " line " << i << " end";
    });
  }
  for (std::thread& thread : threads) thread.join();
  set_log_sink(nullptr);
  set_log_level(LogLevel::kWarn);

  std::istringstream lines(sink.str());
  std::string line;
  int total = 0;
  std::vector<int> per_thread(kThreads, 0);
  while (std::getline(lines, line)) {
    int t = -1, i = -1;
    // Every line must match "[tcsa INFO] thread <t> line <i> end" exactly;
    // any torn or merged write breaks the parse or the trailing check.
    ASSERT_EQ(std::sscanf(line.c_str(), "[tcsa INFO] thread %d line %d end",
                          &t, &i),
              2)
        << "torn line: " << line;
    ASSERT_TRUE(t >= 0 && t < kThreads) << line;
    ASSERT_TRUE(i >= 0 && i < kLines) << line;
    ASSERT_TRUE(line.size() >= 4 && line.compare(line.size() - 4, 4, " end") == 0)
        << "trailing garbage: " << line;
    ++per_thread[static_cast<std::size_t>(t)];
    ++total;
  }
  EXPECT_EQ(total, kThreads * kLines);
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_thread[t], kLines);
}

}  // namespace
}  // namespace tcsa
