// Tests for program inspection (model/inspect) and trace import
// (workload/trace).
#include <gtest/gtest.h>

#include <sstream>

#include "core/channel_bound.hpp"
#include "core/pamad.hpp"
#include "core/susc.hpp"
#include "model/inspect.hpp"
#include "model/validate.hpp"
#include "workload/trace.hpp"

namespace tcsa {
namespace {

// ------------------------------------------------------------------ inspect

TEST(Inspect, SuscReportShape) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram p = schedule_susc(w);
  const ProgramReport r = inspect_program(p, w);
  EXPECT_EQ(r.channels, 4);
  EXPECT_EQ(r.cycle_length, 8);
  EXPECT_EQ(r.pages_missing, 0);
  ASSERT_EQ(r.groups.size(), 3u);
  // SUSC: copies = t_h / t_i, worst gap exactly t_i.
  EXPECT_EQ(r.groups[0].copies_per_page, 4);
  EXPECT_EQ(r.groups[0].worst_gap, 2);
  EXPECT_EQ(r.groups[2].copies_per_page, 1);
  EXPECT_EQ(r.groups[2].worst_gap, 8);
  // Slot shares sum to 1 when nothing is missing.
  double share = 0.0;
  for (const auto& g : r.groups) share += g.share_of_slots;
  EXPECT_NEAR(share, 1.0, 1e-12);
}

TEST(Inspect, FillRatioAndIdealSpacing) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const PamadSchedule s = schedule_pamad(w, 3);
  const ProgramReport r = inspect_program(s.program, w);
  EXPECT_NEAR(r.fill_ratio, 25.0 / 27.0, 1e-12);
  EXPECT_NEAR(r.groups[0].ideal_spacing, 9.0 / 4.0, 1e-12);
  // Mean gap is cycle / copies by construction of the identity.
  EXPECT_NEAR(r.groups[0].mean_gap, 9.0 / 4.0, 1e-12);
}

TEST(Inspect, MissingPagesCounted) {
  const Workload w = make_workload({4}, {3});
  BroadcastProgram p(1, 4);
  p.place(0, 0, 0);  // pages 1, 2 never appear
  const ProgramReport r = inspect_program(p, w);
  EXPECT_EQ(r.pages_missing, 2);
  const std::string text = report_to_string(r);
  EXPECT_NE(text.find("WARNING"), std::string::npos);
}

TEST(Inspect, ReportRendersAllGroups) {
  const Workload w = make_workload({2, 4}, {2, 3});
  const BroadcastProgram p = schedule_susc(w);
  const std::string text = report_to_string(inspect_program(p, w));
  EXPECT_NE(text.find("group"), std::string::npos);
  EXPECT_NE(text.find("worst-gap"), std::string::npos);
}

TEST(Inspect, OccupancyStripScalesAndClamps) {
  BroadcastProgram p(1, 8);
  for (SlotCount s = 0; s < 4; ++s) p.place(0, s, 0);  // front half full
  const std::string strip = occupancy_strip(p, 4);
  ASSERT_EQ(strip.size(), 4u);
  EXPECT_EQ(strip[0], '9');
  EXPECT_EQ(strip[1], '9');
  EXPECT_EQ(strip[2], '0');
  EXPECT_EQ(strip[3], '0');
}

TEST(Inspect, StripWidthCappedAtCycle) {
  BroadcastProgram p(1, 3);
  EXPECT_EQ(occupancy_strip(p, 64).size(), 3u);
  EXPECT_THROW(occupancy_strip(p, 0), std::invalid_argument);
}

// -------------------------------------------------------------------- trace

TEST(Trace, ParsesFormatsAndComments) {
  std::istringstream is(
      "# route pages\n"
      "bridge_a 5\n"
      "tunnel,12\n"
      "\n"
      "ring_road\t40   # arterial\n");
  const auto entries = parse_trace(is);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "bridge_a");
  EXPECT_EQ(entries[0].expected_time, 5);
  EXPECT_EQ(entries[1].name, "tunnel");
  EXPECT_EQ(entries[1].expected_time, 12);
  EXPECT_EQ(entries[2].name, "ring_road");
  EXPECT_EQ(entries[2].expected_time, 40);
}

TEST(Trace, RejectsMalformedLines) {
  std::istringstream missing("pagename\n");
  EXPECT_THROW(parse_trace(missing), std::invalid_argument);
  std::istringstream trailing("page 5 extra\n");
  EXPECT_THROW(parse_trace(trailing), std::invalid_argument);
  std::istringstream nonpositive("page 0\n");
  EXPECT_THROW(parse_trace(nonpositive), std::invalid_argument);
}

TEST(Trace, PlanBuildsSchedulableWorkload) {
  std::vector<TraceEntry> entries;
  for (const SlotCount t : {2, 3, 4, 6, 9})
    entries.push_back(TraceEntry{"p" + std::to_string(t), t});
  const TracePlan plan = plan_from_trace(entries);
  // The Section-2 example: ladder {2,4,8}.
  EXPECT_EQ(plan.rearranged.workload.group_count(), 3);
  EXPECT_EQ(plan.ladder_ratio, 2);
  // Names follow their pages through the reordering.
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const PageId page = plan.rearranged.page_of_input[i];
    EXPECT_EQ(plan.name_of_page[page], entries[i].name);
  }
  // And the result schedules.
  const BroadcastProgram p = schedule_susc(plan.rearranged.workload);
  EXPECT_TRUE(is_valid_program(p, plan.rearranged.workload));
}

TEST(Trace, PlanRejectsEmpty) {
  EXPECT_THROW(plan_from_trace({}), std::invalid_argument);
}

}  // namespace
}  // namespace tcsa
