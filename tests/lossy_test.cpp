// Tests for failure injection: the Gilbert–Elliott lossy reception model
// and the broadcast-disk baseline scheduler.
#include <gtest/gtest.h>

#include "core/bdisk.hpp"
#include "core/channel_bound.hpp"
#include "core/mpb.hpp"
#include "core/pamad.hpp"
#include "core/susc.hpp"
#include "model/appearance_index.hpp"
#include "model/validate.hpp"
#include "sim/broadcast_sim.hpp"
#include "sim/lossy.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

// -------------------------------------------------------------------- lossy

TEST(LossModel, IndependentAndStationary) {
  const LossModel independent = LossModel::independent(0.3);
  EXPECT_DOUBLE_EQ(independent.stationary_loss(), 0.3);

  LossModel bursty;
  bursty.p_good_to_bad = 0.1;
  bursty.p_bad_to_good = 0.4;
  bursty.loss_good = 0.0;
  bursty.loss_bad = 1.0;
  EXPECT_NEAR(bursty.stationary_loss(), 0.2, 1e-12);  // 0.1/(0.1+0.4)
}

TEST(Lossy, ZeroLossMatchesCleanWait) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram p = schedule_susc(w);
  const AppearanceIndex idx(p, w.total_pages());
  Rng rng(1);
  const LossModel clean = LossModel::independent(0.0);
  for (double arrival : {0.0, 1.5, 6.2}) {
    const LossyAccess access = lossy_wait(idx, 4, arrival, clean, rng);
    EXPECT_DOUBLE_EQ(access.wait, idx.wait_after(4, arrival));
    EXPECT_EQ(access.attempts, 1);
  }
}

TEST(Lossy, TotalLossHitsAttemptCap) {
  const Workload w = make_workload({2}, {1});
  BroadcastProgram p(1, 2);
  p.place(0, 0, 0);
  p.place(0, 1, 0);
  const AppearanceIndex idx(p, 1);
  Rng rng(2);
  const LossModel black_hole = LossModel::independent(1.0);
  const LossyAccess access = lossy_wait(idx, 0, 0.0, black_hole, rng, 7);
  EXPECT_EQ(access.attempts, 7);
  EXPECT_GE(access.wait, 6.0);
}

TEST(Lossy, RetriesWaitWholeSpacings) {
  // Page every 4 slots; with 50% independent loss, the mean wait is the
  // clean mean (2) plus E[extra spacings] = 4 * (p/(1-p)) = 4.
  const Workload w = make_workload({4}, {1});
  BroadcastProgram p(1, 8);
  p.place(0, 0, 0);
  p.place(0, 4, 0);
  const LossySimResult r =
      simulate_lossy(p, w, LossModel::independent(0.5), 40000, 11);
  EXPECT_NEAR(r.avg_wait, 2.0 + 4.0, 0.2);
  EXPECT_NEAR(r.avg_attempts, 2.0, 0.05);
  EXPECT_NEAR(r.loss_rate, 0.5, 0.02);
}

TEST(Lossy, DelayDegradesMonotonicallyWithLoss) {
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 5, 200, 4, 2);
  const PamadSchedule s = schedule_pamad(w, 3);
  double last = -1.0;
  for (const double p : {0.0, 0.1, 0.3, 0.5}) {
    const LossySimResult r =
        simulate_lossy(s.program, w, LossModel::independent(p), 20000, 4);
    EXPECT_GT(r.avg_delay, last) << "loss " << p;
    last = r.avg_delay;
  }
}

TEST(Lossy, BurstsHurtMoreThanIndependentAtEqualRate) {
  // Bursts wipe consecutive appearances of the *same* page, so deadline
  // overruns pile up relative to independent loss of equal average rate.
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 5, 200, 4, 2);
  const PamadSchedule s = schedule_pamad(w, 4);

  LossModel bursty;
  bursty.p_good_to_bad = 0.05;
  bursty.p_bad_to_good = 0.15;
  bursty.loss_good = 0.0;
  bursty.loss_bad = 1.0;
  const double rate = bursty.stationary_loss();
  const LossySimResult burst_result =
      simulate_lossy(s.program, w, bursty, 30000, 6);
  const LossySimResult indep_result =
      simulate_lossy(s.program, w, LossModel::independent(rate), 30000, 6);
  EXPECT_GT(burst_result.avg_delay, indep_result.avg_delay);
}

TEST(Lossy, ValidProgramStaysAheadUnderMildLoss) {
  // Failure injection against SUSC: with 5% loss, most clients still meet
  // deadlines (the occasional retry costs one spacing).
  const Workload w = make_workload({4, 8, 16}, {4, 6, 8});
  const BroadcastProgram p = schedule_susc(w);
  ASSERT_TRUE(is_valid_program(p, w));
  const LossySimResult r =
      simulate_lossy(p, w, LossModel::independent(0.05), 30000, 8);
  EXPECT_LT(r.miss_rate, 0.07);
  EXPECT_GT(r.miss_rate, 0.0);  // loss does bite occasionally
}

TEST(Lossy, DeterministicInSeed) {
  const Workload w = make_workload({2, 4}, {2, 3});
  const BroadcastProgram p = schedule_susc(w);
  const LossModel model = LossModel::independent(0.2);
  const LossySimResult a = simulate_lossy(p, w, model, 5000, 42);
  const LossySimResult b = simulate_lossy(p, w, model, 5000, 42);
  EXPECT_DOUBLE_EQ(a.avg_wait, b.avg_wait);
  EXPECT_DOUBLE_EQ(a.avg_attempts, b.avg_attempts);
}

TEST(Lossy, RejectsBadParameters) {
  const Workload w = make_workload({2}, {1});
  BroadcastProgram p(1, 2);
  p.place(0, 0, 0);
  LossModel bad;
  bad.loss_bad = 1.5;
  EXPECT_THROW(simulate_lossy(p, w, bad, 10, 1), std::invalid_argument);
  EXPECT_THROW(simulate_lossy(p, w, LossModel{}, 0, 1),
               std::invalid_argument);
  const AppearanceIndex idx(p, 1);
  Rng rng(1);
  EXPECT_THROW(lossy_wait(idx, 0, 0.0, LossModel{}, rng, 0),
               std::invalid_argument);
}

// -------------------------------------------------------------------- bdisk

TEST(Bdisk, CopyCountsMatchRelativeFrequencies) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BdiskSchedule s = schedule_bdisk(w, 2);
  const AppearanceIndex idx(s.program, w.total_pages());
  const std::vector<SlotCount> rel = {4, 2, 1};
  for (PageId page = 0; page < w.total_pages(); ++page) {
    const GroupId g = w.group_of(page);
    EXPECT_EQ(idx.count(page), rel[static_cast<std::size_t>(g)])
        << "page " << page;
  }
}

TEST(Bdisk, MinorCycleStructure) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BdiskSchedule s = schedule_bdisk(w, 1);
  EXPECT_EQ(s.minor_cycles, 4);  // max_rel = t_h/t_1
  EXPECT_EQ(s.chunk_count, (std::vector<SlotCount>{1, 2, 4}));
  // Total slots: 4*3 + 2*5 + 1*3 = 25 on one channel.
  EXPECT_EQ(s.t_major, 25);
  EXPECT_EQ(s.program.occupied(), 25);
}

TEST(Bdisk, ValidAtSufficientChannels) {
  const Workload w = make_workload({2, 4}, {2, 3});
  const BdiskSchedule s = schedule_bdisk(w, min_channels(w));
  SimConfig sim;
  sim.requests.count = 5000;
  EXPECT_NEAR(simulate_requests(s.program, w, sim).avg_delay, 0.0, 0.35);
}

TEST(Bdisk, ComparableToMpbWellBelowBound) {
  // Same copy counts as m-PB, different interleave: when the cycle is long
  // the two baselines land in the same delay regime (well above PAMAD).
  const Workload w = make_paper_workload(GroupSizeShape::kUniform, 6, 300, 4, 2);
  const SlotCount channels = min_channels(w) / 4;
  SimConfig sim;
  sim.requests.count = 20000;
  const double bdisk =
      simulate_requests(schedule_bdisk(w, channels).program, w, sim).avg_delay;
  const double mpb =
      simulate_requests(schedule_mpb(w, channels).program, w, sim).avg_delay;
  const double pamad =
      simulate_requests(schedule_pamad(w, channels).program, w, sim).avg_delay;
  EXPECT_NEAR(bdisk, mpb, mpb * 0.5);
  EXPECT_LT(pamad, bdisk);
}

TEST(Bdisk, RejectsBadChannelCount) {
  const Workload w = make_workload({2}, {1});
  EXPECT_THROW(schedule_bdisk(w, 0), std::invalid_argument);
}

}  // namespace
}  // namespace tcsa
