// shard_e2e_test.cpp — ISSUE acceptance: a sweep run as forked shard
// processes must, after merge, reproduce the single-process run (counter
// totals and sweep points) and yield one valid Chrome trace holding spans
// from every shard, and `tcsactl obs diff` must gate regressions by exit
// code. Drives the real tcsactl binary via fork/exec.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/serialize.hpp"
#include "model/workload.hpp"
#include "obs/artifact.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/subprocess.hpp"

#ifndef TCSACTL_PATH
#error "shard_e2e_test requires -DTCSACTL_PATH=\"...\" from CMake"
#endif

using namespace tcsa;

namespace {

#if !TCSA_OBS_COMPILED

// Without compiled-in instrumentation the shards produce no metrics/trace
// artifacts (by design — satellite: warn and skip); points still merge, but
// the acceptance assertions below are about the observability pipeline.
TEST(ShardE2E, CompiledOut) { GTEST_SKIP() << "built with TCSA_OBS=OFF"; }

#else

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

/// Shared fixture: one sharded run (2 forked children) and one
/// single-process run over the identical workload + grid, both merged.
class ShardE2E : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    root_ = new std::filesystem::path(
        std::filesystem::path(testing::TempDir()) /
        ("tcsa_shard_e2e_" + std::to_string(::getpid())));
    std::filesystem::create_directories(workload_dir());
    {
      std::ofstream out(workload_path());
      save_workload(out, make_workload({2, 4, 8}, {3, 5, 3}));
    }
    ASSERT_EQ(run_sweep({"--shards", "2", "--jobs", "2"}, sharded_dir()), 0);
    ASSERT_EQ(run_sweep({}, single_dir()), 0);
    ASSERT_EQ(obs_merge(sharded_dir()), 0);
    ASSERT_EQ(obs_merge(single_dir()), 0);
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    std::filesystem::remove_all(*root_, ec);
    delete root_;
    root_ = nullptr;
  }

  static std::filesystem::path workload_dir() { return *root_ / "in"; }
  static std::string workload_path() {
    return (workload_dir() / "workload.txt").string();
  }
  static std::string sharded_dir() { return (*root_ / "sharded").string(); }
  static std::string single_dir() { return (*root_ / "single").string(); }

  static int run_sweep(const std::vector<std::string>& extra,
                       const std::string& out_dir) {
    std::filesystem::create_directories(out_dir);
    std::vector<std::string> argv = {
        TCSACTL_PATH, "--cmd",      "sweep", "--workload", workload_path(),
        "--requests",  "400",       "--seed", "7",         "--out-dir",
        out_dir};
    argv.insert(argv.end(), extra.begin(), extra.end());
    SpawnOptions options;
    options.stdout_path = out_dir + "/driver.stdout.txt";
    options.stderr_path = out_dir + "/driver.stderr.txt";
    return run_command(argv, options);
  }

  static int obs_merge(const std::string& dir) {
    SpawnOptions options;
    options.stdout_path = dir + "/merge.stdout.txt";
    options.stderr_path = dir + "/merge.stderr.txt";
    return run_command({TCSACTL_PATH, "obs", "merge", "--dir", dir}, options);
  }

  static std::filesystem::path* root_;
};

std::filesystem::path* ShardE2E::root_ = nullptr;

TEST_F(ShardE2E, ShardProcessesWroteCompleteArtifactSets) {
  for (int shard = 0; shard < 2; ++shard) {
    const std::string stem = sharded_dir() + "/shard-" + std::to_string(shard);
    for (const char* kind :
         {".manifest.json", ".metrics.json", ".trace.json", ".points.json"})
      EXPECT_TRUE(std::filesystem::exists(stem + kind)) << stem << kind;
  }
  const obs::RunManifest m0 =
      obs::manifest_from_json(slurp(sharded_dir() + "/shard-0.manifest.json"));
  const obs::RunManifest m1 =
      obs::manifest_from_json(slurp(sharded_dir() + "/shard-1.manifest.json"));
  EXPECT_EQ(m0.run_id, m1.run_id);
  EXPECT_EQ(m0.config_digest, m1.config_digest);
  EXPECT_EQ(m0.shard_count, 2);
  EXPECT_NE(m0.os_pid, m1.os_pid);  // genuinely separate processes

  // Same workload + grid ⇒ same digest as the single-process run.
  const obs::RunManifest single =
      obs::manifest_from_json(slurp(single_dir() + "/shard-0.manifest.json"));
  EXPECT_EQ(single.config_digest, m0.config_digest);
  EXPECT_EQ(single.shard_count, 1);
}

TEST_F(ShardE2E, MergedCountersMatchSingleProcessRun) {
  const obs::MetricsSnapshot merged =
      obs::snapshot_from_json(slurp(sharded_dir() + "/merged.metrics.json"));
  const obs::MetricsSnapshot single =
      obs::snapshot_from_json(slurp(single_dir() + "/merged.metrics.json"));

  // Work counters must agree exactly: the shard union covers each grid point
  // once with identical per-point seeds. Pool counters are excluded — two
  // processes legitimately run two pools (runs/idle-time differ).
  std::size_t compared = 0;
  for (const obs::CounterSnapshot& c : single.counters) {
    if (c.name.rfind("tcsa_pool_", 0) == 0) continue;
    EXPECT_EQ(merged.counter_value(c.name), c.value) << c.name;
    ++compared;
  }
  EXPECT_GE(compared, 5u);
  EXPECT_GT(single.counter_value("tcsa_sweep_points_total"), 0u);
  EXPECT_GT(single.counter_value("tcsa_sim_requests_total"), 0u);

  // Simulated-wait histogram (semantic work, not timing) must also agree.
  const obs::HistogramSnapshot* mh = merged.histogram("tcsa_sim_wait_slots");
  const obs::HistogramSnapshot* sh = single.histogram("tcsa_sim_wait_slots");
  ASSERT_NE(mh, nullptr);
  ASSERT_NE(sh, nullptr);
  EXPECT_EQ(mh->counts, sh->counts);
  EXPECT_NEAR(mh->sum, sh->sum, 1e-6);
}

TEST_F(ShardE2E, MergedPointsMatchSingleProcessRun) {
  const auto merged =
      obs::points_from_json(slurp(sharded_dir() + "/merged.points.json"));
  const auto single =
      obs::points_from_json(slurp(single_dir() + "/merged.points.json"));
  ASSERT_EQ(merged.size(), single.size());
  ASSERT_FALSE(merged.empty());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].channels, single[i].channels);
    EXPECT_EQ(merged[i].method, single[i].method);
    EXPECT_DOUBLE_EQ(merged[i].avg_delay, single[i].avg_delay) << i;
    EXPECT_DOUBLE_EQ(merged[i].miss_rate, single[i].miss_rate) << i;
  }
}

TEST_F(ShardE2E, MergedTraceIsValidAndHoldsEveryShardPid) {
  const obs::JsonValue doc =
      obs::json_parse(slurp(sharded_dir() + "/merged.trace.json"));
  const obs::JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, obs::JsonValue::Kind::kArray);

  std::set<std::uint64_t> span_pids;
  for (const obs::JsonValue& e : events.array) {
    if (e.at("ph").string != "X") continue;
    span_pids.insert(e.at("pid").uint_value);
    EXPECT_TRUE(e.at("ts").is_uint);       // aligned, non-negative clocks
    EXPECT_NE(e.find("dur"), nullptr);
    EXPECT_NE(e.find("name"), nullptr);
  }
  EXPECT_EQ(span_pids, (std::set<std::uint64_t>{1, 2}))
      << "spans from every shard process, re-keyed by shard index";
}

TEST_F(ShardE2E, ObsDiffGatesByExitCode) {
  const std::string merged = sharded_dir() + "/merged.metrics.json";
  EXPECT_EQ(run_command({TCSACTL_PATH, "obs", "diff", "--base", merged,
                         "--current", merged},
                        {}),
            0);
  // Same run vs single-process run: semantic counters identical, pool
  // counters differ — must regress under zero tolerance.
  EXPECT_NE(run_command({TCSACTL_PATH, "obs", "diff", "--base", merged,
                         "--current", single_dir() + "/merged.metrics.json"},
                        {}),
            0);

  // Injected regression: halve one counter in a copy of the snapshot.
  obs::MetricsSnapshot tampered = obs::snapshot_from_json(slurp(merged));
  bool halved = false;
  for (obs::CounterSnapshot& c : tampered.counters) {
    if (c.name == "tcsa_sweep_points_total") {
      c.value /= 2;
      halved = true;
    }
  }
  ASSERT_TRUE(halved);
  const std::string tampered_path = sharded_dir() + "/tampered.metrics.json";
  { std::ofstream(tampered_path) << tampered.to_json(); }
  EXPECT_EQ(run_command({TCSACTL_PATH, "obs", "diff", "--base", merged,
                         "--current", tampered_path, "--rel-tol", "0.10"},
                        {}),
            1);
}

TEST_F(ShardE2E, ObsReportSummarizesTheRun) {
  const std::string report_path = sharded_dir() + "/report.md";
  SpawnOptions options;
  options.stdout_path = report_path;
  ASSERT_EQ(run_command(
                {TCSACTL_PATH, "obs", "report", "--dir", sharded_dir()},
                options),
            0);
  const std::string md = slurp(report_path);
  EXPECT_NE(md.find("# TCSA run report"), std::string::npos);
  EXPECT_NE(md.find("2/2 shard(s)"), std::string::npos);
  EXPECT_NE(md.find("tcsa_sweep_points_total"), std::string::npos);
  EXPECT_NE(md.find("| channels | method |"), std::string::npos);
}

#endif  // TCSA_OBS_COMPILED

}  // namespace
