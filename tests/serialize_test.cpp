// Tests for the tcsa v1 text formats (model/serialize).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/pamad.hpp"
#include "core/susc.hpp"
#include "model/serialize.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

TEST(SerializeWorkload, RoundTrip) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  EXPECT_EQ(workload_from_string(workload_to_string(w)), w);
}

TEST(SerializeWorkload, RoundTripPaperDefaults) {
  for (const GroupSizeShape shape : paper_shapes()) {
    const Workload w = make_paper_workload(shape);
    EXPECT_EQ(workload_from_string(workload_to_string(w)), w);
  }
}

TEST(SerializeWorkload, FormatIsStable) {
  const std::string text = workload_to_string(make_workload({2, 4}, {1, 7}));
  EXPECT_EQ(text,
            "tcsa-workload v1\n"
            "groups 2\n"
            "group 2 1\n"
            "group 4 7\n");
}

TEST(SerializeWorkload, CommentsAndBlanksIgnored) {
  const Workload w = workload_from_string(
      "# saved by tooling\n\n"
      "tcsa-workload v1\n"
      "groups 1\n"
      "# the only group\n"
      "group 5 3\n");
  EXPECT_EQ(w.expected_time(0), 5);
  EXPECT_EQ(w.pages_in_group(0), 3);
}

TEST(SerializeWorkload, RejectsBadHeader) {
  EXPECT_THROW(workload_from_string("tcsa-workload v2\ngroups 1\ngroup 2 1\n"),
               std::invalid_argument);
  EXPECT_THROW(workload_from_string(""), std::invalid_argument);
}

TEST(SerializeWorkload, RejectsMalformedLines) {
  EXPECT_THROW(workload_from_string("tcsa-workload v1\ngroups x\n"),
               std::invalid_argument);
  EXPECT_THROW(
      workload_from_string("tcsa-workload v1\ngroups 1\ngroup 2\n"),
      std::invalid_argument);
  EXPECT_THROW(
      workload_from_string("tcsa-workload v1\ngroups 2\ngroup 2 1\n"),
      std::invalid_argument);
}

TEST(SerializeWorkload, RejectsInvariantViolations) {
  // Non-dividing ladder caught with a parse-context message.
  EXPECT_THROW(workload_from_string("tcsa-workload v1\ngroups 2\n"
                                    "group 2 1\ngroup 3 1\n"),
               std::invalid_argument);
}

TEST(SerializeProgram, RoundTripEmptySlots) {
  BroadcastProgram p(2, 3);
  p.place(0, 0, 7);
  p.place(1, 2, 0);
  const BroadcastProgram q = program_from_string(program_to_string(p));
  EXPECT_EQ(p, q);
}

TEST(SerializeProgram, RoundTripRealSchedules) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram susc = schedule_susc(w);
  EXPECT_EQ(program_from_string(program_to_string(susc)), susc);
  const PamadSchedule pamad = schedule_pamad(w, 3);
  EXPECT_EQ(program_from_string(program_to_string(pamad.program)),
            pamad.program);
}

TEST(SerializeProgram, FormatIsStable) {
  BroadcastProgram p(1, 3);
  p.place(0, 1, 4);
  EXPECT_EQ(program_to_string(p),
            "tcsa-program v1\n"
            "shape 1 3\n"
            "row 0 . 4 .\n");
}

TEST(SerializeProgram, RejectsBadShapeAndRows) {
  EXPECT_THROW(program_from_string("tcsa-program v1\nshape 0 3\n"),
               std::invalid_argument);
  EXPECT_THROW(program_from_string("tcsa-program v1\nshape 1 2\nrow 0 .\n"),
               std::invalid_argument);
  EXPECT_THROW(
      program_from_string("tcsa-program v1\nshape 1 2\nrow 1 . .\n"),
      std::invalid_argument);
  EXPECT_THROW(
      program_from_string("tcsa-program v1\nshape 1 2\nrow 0 . x\n"),
      std::invalid_argument);
}

TEST(SerializeProgram, RejectsMissingRows) {
  EXPECT_THROW(program_from_string("tcsa-program v1\nshape 2 2\nrow 0 . .\n"),
               std::invalid_argument);
}

}  // namespace
}  // namespace tcsa
