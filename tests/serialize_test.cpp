// Tests for the tcsa v1 text formats (model/serialize).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/pamad.hpp"
#include "core/susc.hpp"
#include "model/serialize.hpp"
#include "workload/distributions.hpp"

namespace tcsa {
namespace {

TEST(SerializeWorkload, RoundTrip) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  EXPECT_EQ(workload_from_string(workload_to_string(w)), w);
}

TEST(SerializeWorkload, RoundTripPaperDefaults) {
  for (const GroupSizeShape shape : paper_shapes()) {
    const Workload w = make_paper_workload(shape);
    EXPECT_EQ(workload_from_string(workload_to_string(w)), w);
  }
}

TEST(SerializeWorkload, FormatIsStable) {
  const std::string text = workload_to_string(make_workload({2, 4}, {1, 7}));
  EXPECT_EQ(text,
            "tcsa-workload v1\n"
            "groups 2\n"
            "group 2 1\n"
            "group 4 7\n");
}

TEST(SerializeWorkload, CommentsAndBlanksIgnored) {
  const Workload w = workload_from_string(
      "# saved by tooling\n\n"
      "tcsa-workload v1\n"
      "groups 1\n"
      "# the only group\n"
      "group 5 3\n");
  EXPECT_EQ(w.expected_time(0), 5);
  EXPECT_EQ(w.pages_in_group(0), 3);
}

TEST(SerializeWorkload, RejectsBadHeader) {
  EXPECT_THROW(workload_from_string("tcsa-workload v2\ngroups 1\ngroup 2 1\n"),
               std::invalid_argument);
  EXPECT_THROW(workload_from_string(""), std::invalid_argument);
}

TEST(SerializeWorkload, RejectsMalformedLines) {
  EXPECT_THROW(workload_from_string("tcsa-workload v1\ngroups x\n"),
               std::invalid_argument);
  EXPECT_THROW(
      workload_from_string("tcsa-workload v1\ngroups 1\ngroup 2\n"),
      std::invalid_argument);
  EXPECT_THROW(
      workload_from_string("tcsa-workload v1\ngroups 2\ngroup 2 1\n"),
      std::invalid_argument);
}

TEST(SerializeWorkload, RejectsInvariantViolations) {
  // Non-dividing ladder caught with a parse-context message.
  EXPECT_THROW(workload_from_string("tcsa-workload v1\ngroups 2\n"
                                    "group 2 1\ngroup 3 1\n"),
               std::invalid_argument);
}

TEST(SerializeProgram, RoundTripEmptySlots) {
  BroadcastProgram p(2, 3);
  p.place(0, 0, 7);
  p.place(1, 2, 0);
  const BroadcastProgram q = program_from_string(program_to_string(p));
  EXPECT_EQ(p, q);
}

TEST(SerializeProgram, RoundTripRealSchedules) {
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram susc = schedule_susc(w);
  EXPECT_EQ(program_from_string(program_to_string(susc)), susc);
  const PamadSchedule pamad = schedule_pamad(w, 3);
  EXPECT_EQ(program_from_string(program_to_string(pamad.program)),
            pamad.program);
}

TEST(SerializeProgram, FormatIsStable) {
  BroadcastProgram p(1, 3);
  p.place(0, 1, 4);
  EXPECT_EQ(program_to_string(p),
            "tcsa-program v1\n"
            "shape 1 3\n"
            "row 0 . 4 .\n");
}

TEST(SerializeProgram, RejectsBadShapeAndRows) {
  EXPECT_THROW(program_from_string("tcsa-program v1\nshape 0 3\n"),
               std::invalid_argument);
  EXPECT_THROW(program_from_string("tcsa-program v1\nshape 1 2\nrow 0 .\n"),
               std::invalid_argument);
  EXPECT_THROW(
      program_from_string("tcsa-program v1\nshape 1 2\nrow 1 . .\n"),
      std::invalid_argument);
  EXPECT_THROW(
      program_from_string("tcsa-program v1\nshape 1 2\nrow 0 . x\n"),
      std::invalid_argument);
}

TEST(SerializeProgram, RejectsMissingRows) {
  EXPECT_THROW(program_from_string("tcsa-program v1\nshape 2 2\nrow 0 . .\n"),
               std::invalid_argument);
}

// ------------------------------------------------------- binary encodings
// (the swap frame's payload format — see DESIGN.md §7)

TEST(BinaryWorkload, RoundTrip) {
  for (const GroupSizeShape shape : paper_shapes()) {
    const Workload w = make_paper_workload(shape);
    EXPECT_EQ(workload_from_binary(workload_to_binary(w)), w);
  }
}

TEST(BinaryWorkload, LayoutIsStable) {
  const std::string bytes = workload_to_binary(make_workload({2}, {1}));
  // magic "TCWB" | version 1 | group_count 1 | {t=2, pages=1} as i64 pairs.
  ASSERT_EQ(bytes.size(), 4u + 1u + 4u + 16u);
  EXPECT_EQ(bytes.substr(0, 4), "TCWB");
  EXPECT_EQ(bytes[4], 1);
}

TEST(BinaryWorkload, EveryTruncationPrefixIsRejected) {
  const std::string bytes =
      workload_to_binary(make_workload({2, 4, 8}, {3, 5, 3}));
  for (std::size_t len = 0; len < bytes.size(); ++len)
    EXPECT_THROW(workload_from_binary(bytes.substr(0, len)),
                 std::invalid_argument)
        << "prefix of " << len << " bytes parsed";
}

TEST(BinaryWorkload, RejectsBadMagicVersionTrailingJunkAndHostileCounts) {
  const Workload w = make_workload({2, 4}, {1, 7});
  std::string bytes = workload_to_binary(w);
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(workload_from_binary(bad_magic), std::invalid_argument);
  std::string bad_version = bytes;
  bad_version[4] = 9;
  EXPECT_THROW(workload_from_binary(bad_version), std::invalid_argument);
  EXPECT_THROW(workload_from_binary(bytes + "x"), std::invalid_argument);
  // A hostile group count must be rejected before any allocation happens.
  std::string hostile = bytes.substr(0, 5);
  for (int i = 0; i < 4; ++i) hostile.push_back(static_cast<char>(0xff));
  EXPECT_THROW(workload_from_binary(hostile), std::invalid_argument);
}

TEST(BinaryWorkload, ConsumedSupportsConcatenatedDocuments) {
  const Workload a = make_workload({2, 4, 8}, {3, 5, 3});
  const Workload b = make_workload({3}, {2});
  std::string bytes = workload_to_binary(a);
  const std::size_t first_len = bytes.size();
  append_workload_binary(bytes, b);
  std::size_t consumed = 0;
  EXPECT_EQ(workload_from_binary(bytes, &consumed), a);
  ASSERT_EQ(consumed, first_len);
  EXPECT_EQ(workload_from_binary(
                std::string_view(bytes).substr(consumed), &consumed),
            b);
  // Without `consumed`, the same concatenation is trailing junk.
  EXPECT_THROW(workload_from_binary(bytes), std::invalid_argument);
}

TEST(BinaryProgram, RoundTripIncludingEmptyCells) {
  BroadcastProgram sparse(2, 3);
  sparse.place(0, 0, 7);
  sparse.place(1, 2, 0);
  EXPECT_EQ(program_from_binary(program_to_binary(sparse)), sparse);
  const Workload w = make_workload({2, 4, 8}, {3, 5, 3});
  const BroadcastProgram susc = schedule_susc(w);
  EXPECT_EQ(program_from_binary(program_to_binary(susc)), susc);
  const PamadSchedule pamad = schedule_pamad(w, 3);
  EXPECT_EQ(program_from_binary(program_to_binary(pamad.program)),
            pamad.program);
}

TEST(BinaryProgram, EveryTruncationPrefixIsRejected) {
  const std::string bytes =
      program_to_binary(schedule_susc(make_workload({2, 4}, {1, 7})));
  for (std::size_t len = 0; len < bytes.size(); ++len)
    EXPECT_THROW(program_from_binary(bytes.substr(0, len)),
                 std::invalid_argument)
        << "prefix of " << len << " bytes parsed";
}

TEST(BinaryProgram, RejectsHostileShapeBeforeAllocating) {
  const auto with_shape = [](std::int64_t channels, std::int64_t cycle) {
    // magic | version | shape, no grid: the cap must fire before the
    // truncated-grid check could even matter.
    std::string bytes = program_to_binary(BroadcastProgram(1, 1)).substr(0, 5);
    const auto put_i64 = [&bytes](std::int64_t v) {
      for (int i = 0; i < 8; ++i)
        bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    };
    put_i64(channels);
    put_i64(cycle);
    return bytes;
  };
  // Product above the cell cap.
  EXPECT_THROW(program_from_binary(with_shape(1 << 20, 1 << 20)),
               std::invalid_argument);
  // Product that wraps the 64-bit multiply back under the cap.
  EXPECT_THROW(program_from_binary(
                   with_shape(std::int64_t{1} << 40, std::int64_t{1} << 40)),
               std::invalid_argument);
}

}  // namespace
}  // namespace tcsa
