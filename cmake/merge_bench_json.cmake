# merge_bench_json.cmake — combine per-suite google-benchmark JSON reports
# into one file. Invoked by the bench_json target as
#   cmake -DOUTPUT=<path> -DSUITES=<name1;name2;...> -DINPUT_DIR=<dir>
#         -P merge_bench_json.cmake
# where each suite's report is <INPUT_DIR>/<name>.json. The merged document
# is {"suites": {"<name>": <report>, ...}} — plain string assembly, so each
# report is embedded verbatim and no JSON parser is required.

if(NOT OUTPUT OR NOT SUITES OR NOT INPUT_DIR)
  message(FATAL_ERROR "merge_bench_json: OUTPUT, SUITES and INPUT_DIR are required")
endif()

set(merged "{\n  \"suites\": {")
set(first TRUE)
foreach(suite IN LISTS SUITES)
  set(report "${INPUT_DIR}/${suite}.json")
  if(NOT EXISTS "${report}")
    message(FATAL_ERROR "merge_bench_json: missing report ${report}")
  endif()
  file(READ "${report}" content)
  string(STRIP "${content}" content)
  if(NOT first)
    string(APPEND merged ",")
  endif()
  set(first FALSE)
  string(APPEND merged "\n    \"${suite}\": ${content}")
endforeach()
string(APPEND merged "\n  }\n}\n")

file(WRITE "${OUTPUT}" "${merged}")
message(STATUS "merge_bench_json: wrote ${OUTPUT}")
